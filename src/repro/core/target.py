"""Target expression extraction (paper Section 4.2).

Rerun the application model under the concolic interpreter, restricted to
the relevant input bytes of one target site, and collect for every dynamic
execution of that site the symbolic *target expression* — how the program
computes the allocation size from the input fields — together with the
branch condition φ observed along the seed path (the paper's
``target(⟨S,σ⟩, ℓ)`` function of Section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.fieldmap import FieldMapper
from repro.core.sites import TargetSite
from repro.exec.concolic import ConcolicInterpreter, ConcolicReport, SymbolicBranch
from repro.lang.program import Program
from repro.smt.terms import Term


@dataclass
class TargetObservation:
    """One ⟨target expression, branch condition φ⟩ pair for a target site.

    Attributes:
        site: the target site this observation belongs to.
        size_expression: symbolic expression of the allocation size (``B`` in
            the paper's algorithm); ``None`` when the size turned out not to
            be symbolic on this execution (possible when the taint stage was
            conservative).
        seed_size: the concrete size allocated by the seed input.
        seed_path: the branch observations of the whole seed run, in
            execution order (only branches influenced by relevant bytes carry
            a symbolic condition).
        occurrence: index of this dynamic execution of the site (0-based).
    """

    site: TargetSite
    size_expression: Optional[Term]
    seed_size: int
    seed_path: Sequence[SymbolicBranch]
    occurrence: int


def extract_target_observations(
    program: Program,
    seed_input: bytes,
    site: TargetSite,
    field_mapper: Optional[FieldMapper] = None,
    max_observations: int = 4,
) -> List[TargetObservation]:
    """Run the concolic stage for one target site.

    Returns one observation per dynamic execution of the site on the seed
    input (capped at ``max_observations`` — repeated executions of the same
    site almost always yield the same expression).
    """
    mapper = field_mapper or FieldMapper(None)
    interpreter = ConcolicInterpreter(
        program,
        relevant_bytes=set(site.relevant_bytes),
        field_map=mapper.field_map(),
    )
    report = interpreter.run_concolic(seed_input)
    return observations_from_report(report, site, max_observations)


def observations_from_report(
    report: ConcolicReport,
    site: TargetSite,
    max_observations: int = 4,
) -> List[TargetObservation]:
    """Build target observations from an existing concolic report."""
    observations: List[TargetObservation] = []
    seen_expressions: Dict[int, int] = {}
    for occurrence, allocation in enumerate(report.allocations_at(site.site_label)):
        if allocation.size_expression is not None:
            key = id(allocation.size_expression)
            if key in seen_expressions:
                continue
            seen_expressions[key] = occurrence
        observations.append(
            TargetObservation(
                site=site,
                size_expression=allocation.size_expression,
                seed_size=allocation.requested_size,
                seed_path=tuple(report.branches),
                occurrence=occurrence,
            )
        )
        if len(observations) >= max_observations:
            break
    return observations
