"""Baseline input-generation strategies (paper Sections 5.4–5.6 and 6).

These strategies exist to reproduce the comparisons the paper draws:

* :class:`TargetOnlySampling` — generate inputs that satisfy the target
  constraint alone (Section 5.5, "Target Success Rate" column).  The paper
  shows a bimodal outcome: near-perfect success when the application has no
  relevant sanity checks, near-zero when it does.
* :class:`EnforcedSampling` — generate inputs that satisfy the target
  constraint plus the branch constraints DIODE enforced (Section 5.6,
  "Target + Enforced Success Rate" column).
* :class:`FullPathEnforcement` — the classic concolic strategy: force the
  candidate to follow the *entire* seed path through the relevant branches
  (Section 5.4).  Blocking checks make this unsatisfiable for all but two of
  the paper's sites.
* :class:`RandomByteFuzzer` and :class:`TaintDirectedFuzzer` — random
  fuzzing over the whole input and BuzzFuzz/TaintScope-style fuzzing over
  the relevant bytes only (Section 6's related-work comparison).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.apps.appbase import Application
from repro.core.branches import (
    compress_branches,
    extract_branch_constraints,
    relevant_branches,
)
from repro.core.detection import ErrorDetector
from repro.core.enforcement import EnforcementResult
from repro.core.inputs import InputGenerator
from repro.core.overflow import overflow_constraint
from repro.core.sites import TargetSite
from repro.core.target import TargetObservation
from repro.smt.solver import PortfolioSolver, SolverStatus
from repro.smt.terms import Term


@dataclass
class BaselineResult:
    """Outcome of running one baseline strategy against one target site."""

    strategy: str
    site_name: str
    attempts: int
    successes: int
    satisfiable: Optional[bool] = None
    elapsed_seconds: float = 0.0
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def success_rate(self) -> float:
        """Fraction of attempted inputs that triggered the overflow."""
        return self.successes / self.attempts if self.attempts else 0.0

    def ratio(self) -> str:
        """Format as the paper's ``X/N`` success-rate entries."""
        return f"{self.successes}/{self.attempts}"


class _SamplingStrategy:
    """Shared machinery: sample models of a constraint, test each input."""

    strategy_name = "sampling"

    def __init__(
        self,
        application: Application,
        solver: Optional[PortfolioSolver] = None,
        seed: int = 0,
    ) -> None:
        self.application = application
        self.solver = solver or PortfolioSolver()
        self.seed = seed
        self.generator = InputGenerator(application.seed_input, application.format_spec)
        self.detector = ErrorDetector(application.program, application.seed_input)

    def _run_sampling(
        self,
        constraints: Sequence[Term],
        site: TargetSite,
        samples: int,
    ) -> BaselineResult:
        started = time.perf_counter()
        models = self.solver.sample_models(constraints, samples, seed=self.seed)
        successes = 0
        for model in models:
            candidate = self.generator.generate(model)
            evaluation = self.detector.evaluate(candidate.data, site.site_label)
            if evaluation.triggers_overflow:
                successes += 1
        return BaselineResult(
            strategy=self.strategy_name,
            site_name=site.name,
            attempts=samples,
            successes=successes,
            satisfiable=bool(models),
            elapsed_seconds=time.perf_counter() - started,
            details={"models_generated": len(models)},
        )


class TargetOnlySampling(_SamplingStrategy):
    """Sample inputs satisfying the target constraint alone (Section 5.5)."""

    strategy_name = "target_only"

    def run(self, observation: TargetObservation, samples: int = 200) -> BaselineResult:
        """Sample ``samples`` target-constraint models and test each one."""
        if observation.size_expression is None:
            return BaselineResult(
                strategy=self.strategy_name,
                site_name=observation.site.name,
                attempts=samples,
                successes=0,
                satisfiable=False,
            )
        beta = overflow_constraint(observation.size_expression)
        return self._run_sampling([beta], observation.site, samples)


class EnforcedSampling(_SamplingStrategy):
    """Sample inputs satisfying target + enforced constraints (Section 5.6)."""

    strategy_name = "target_plus_enforced"

    def run(
        self,
        enforcement: EnforcementResult,
        samples: int = 200,
    ) -> BaselineResult:
        """Sample models of β plus the branches DIODE actually enforced."""
        constraints = [enforcement.target_constraint] + [
            branch.condition for branch in enforcement.enforced_branches
        ]
        return self._run_sampling(constraints, enforcement.observation.site, samples)


class FullPathEnforcement:
    """Force the candidate to follow the whole seed path (Section 5.4).

    This is the strategy the paper contrasts DIODE against: require the
    target constraint *and* every relevant compressed branch constraint of
    the seed path.  Blocking checks usually make the conjunction
    unsatisfiable.
    """

    strategy_name = "full_path"

    def __init__(
        self,
        application: Application,
        solver: Optional[PortfolioSolver] = None,
    ) -> None:
        self.application = application
        self.solver = solver or PortfolioSolver()
        self.generator = InputGenerator(application.seed_input, application.format_spec)
        self.detector = ErrorDetector(application.program, application.seed_input)

    def run(self, observation: TargetObservation) -> BaselineResult:
        """Check satisfiability of β ∧ (entire relevant seed path)."""
        started = time.perf_counter()
        site = observation.site
        if observation.size_expression is None:
            return BaselineResult(
                strategy=self.strategy_name,
                site_name=site.name,
                attempts=0,
                successes=0,
                satisfiable=False,
            )
        beta = overflow_constraint(observation.size_expression)
        compressed = compress_branches(
            extract_branch_constraints(observation.seed_path)
        )
        relevant = relevant_branches(compressed, beta)
        constraints = [beta] + [branch.condition for branch in relevant]
        solver_result = self.solver.check(constraints)

        attempts = 0
        successes = 0
        if solver_result.is_sat and solver_result.model is not None:
            attempts = 1
            candidate = self.generator.generate(solver_result.model)
            evaluation = self.detector.evaluate(candidate.data, site.site_label)
            if evaluation.triggers_overflow:
                successes = 1
        return BaselineResult(
            strategy=self.strategy_name,
            site_name=site.name,
            attempts=attempts,
            successes=successes,
            satisfiable=None if solver_result.is_unknown else solver_result.is_sat,
            elapsed_seconds=time.perf_counter() - started,
            details={
                "relevant_branches": len(relevant),
                "solver_status": solver_result.status,
            },
        )


class RandomByteFuzzer:
    """Mutate random bytes of the seed input (classic random fuzzing)."""

    strategy_name = "random_fuzz"

    def __init__(self, application: Application, seed: int = 0) -> None:
        self.application = application
        self.random = random.Random(seed)
        self.detector = ErrorDetector(application.program, application.seed_input)

    def run(
        self,
        site: TargetSite,
        attempts: int = 200,
        mutations_per_input: int = 8,
    ) -> BaselineResult:
        """Run ``attempts`` random mutations and count overflow triggers."""
        started = time.perf_counter()
        seed_input = self.application.seed_input
        successes = 0
        for _ in range(attempts):
            data = bytearray(seed_input)
            for _ in range(mutations_per_input):
                position = self.random.randrange(len(data))
                data[position] = self.random.randrange(256)
            evaluation = self.detector.evaluate(bytes(data), site.site_label)
            if evaluation.triggers_overflow:
                successes += 1
        return BaselineResult(
            strategy=self.strategy_name,
            site_name=site.name,
            attempts=attempts,
            successes=successes,
            elapsed_seconds=time.perf_counter() - started,
        )


class TaintDirectedFuzzer:
    """Mutate only the relevant input bytes (BuzzFuzz / TaintScope style)."""

    strategy_name = "taint_directed_fuzz"

    def __init__(self, application: Application, seed: int = 0) -> None:
        self.application = application
        self.random = random.Random(seed)
        self.detector = ErrorDetector(application.program, application.seed_input)

    def run(self, site: TargetSite, attempts: int = 200) -> BaselineResult:
        """Fuzz the relevant bytes with random values; count overflow triggers."""
        started = time.perf_counter()
        seed_input = self.application.seed_input
        relevant = sorted(site.relevant_bytes)
        successes = 0
        for _ in range(attempts):
            data = bytearray(seed_input)
            for offset in relevant:
                if offset < len(data):
                    data[offset] = self.random.randrange(256)
            evaluation = self.detector.evaluate(bytes(data), site.site_label)
            if evaluation.triggers_overflow:
                successes += 1
        return BaselineResult(
            strategy=self.strategy_name,
            site_name=site.name,
            attempts=attempts,
            successes=successes,
            elapsed_seconds=time.perf_counter() - started,
        )
