"""Error detection (paper Section 4.6).

A candidate input is evaluated by running the application model concretely
with two monitors attached:

* the memcheck monitor records invalid reads/writes and simulated crashes —
  the indirect evidence the paper's automated system uses;
* the overflow-witness monitor records whether the size computation of any
  allocation actually wrapped — the paper's manual verification step, here
  automated.

Errors already present in the seed run are filtered out (the paper filters
"any errors that occur during the execution on the seed input").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.exec.overflow_witness import OverflowWitnessInterpreter, OverflowWitnessReport
from repro.exec.trace import ExecutionOutcome, MemoryError
from repro.lang.program import Program


@dataclass
class CandidateEvaluation:
    """The observable effect of running one candidate input."""

    site_label: int
    site_executed: bool
    overflow_triggered: bool
    new_memory_errors: List[MemoryError] = field(default_factory=list)
    outcome: ExecutionOutcome = ExecutionOutcome.COMPLETED
    halt_message: str = ""
    requested_size: Optional[int] = None
    #: Sorted wrapped-operator names at the target site (empty when the
    #: candidate did not overflow there) — the provenance component of the
    #: triage subsystem's canonical witness signature.
    wrap_provenance: Tuple[str, ...] = ()

    @property
    def triggers_overflow(self) -> bool:
        """Whether this candidate triggers the overflow at the target site."""
        return self.site_executed and self.overflow_triggered

    def error_type(self) -> str:
        """Classify the observable error the way the paper's Table 2 does."""
        if not self.new_memory_errors:
            return "None"
        crash = any(error.is_crash for error in self.new_memory_errors)
        has_write = any("Write" in error.kind.value for error in self.new_memory_errors)
        has_read = any("Read" in error.kind.value for error in self.new_memory_errors)
        if crash:
            kind = "InvalidWrite" if has_write else "InvalidRead"
            return f"SIGSEGV/{kind}"
        if has_read and has_write:
            return "InvalidRead/Write"
        return "InvalidWrite" if has_write else "InvalidRead"


class ErrorDetector:
    """Run candidate inputs and decide whether they trigger the overflow."""

    def __init__(self, program: Program, seed_input: bytes) -> None:
        self.program = program
        self.seed_input = bytes(seed_input)
        self._seed_report = OverflowWitnessInterpreter(program).run_witness(self.seed_input)
        self._seed_error_signatures: Set[Tuple[str, int, int]] = (
            self._seed_report.execution.error_signatures()
        )

    # ------------------------------------------------------------------
    @property
    def seed_report(self) -> OverflowWitnessReport:
        """The witness report of the seed run (reused by callers)."""
        return self._seed_report

    def seed_triggers(self, site_label: int) -> bool:
        """Whether the seed input itself already overflows at the site."""
        return self._seed_report.site_overflowed(site_label)

    # ------------------------------------------------------------------
    def evaluate(self, candidate: bytes, site_label: int) -> CandidateEvaluation:
        """Run ``candidate`` and report its effect on the target site."""
        report = OverflowWitnessInterpreter(self.program).run_witness(candidate)
        execution = report.execution
        site_records = execution.allocations_at(site_label)
        new_errors = [
            error
            for error in execution.memory_errors
            if error.signature() not in self._seed_error_signatures
        ]
        return CandidateEvaluation(
            site_label=site_label,
            site_executed=bool(site_records),
            overflow_triggered=report.site_overflowed(site_label),
            new_memory_errors=new_errors,
            outcome=execution.outcome,
            halt_message=execution.halt_message,
            requested_size=site_records[0].requested_size if site_records else None,
            wrap_provenance=report.site_provenance(site_label),
        )
