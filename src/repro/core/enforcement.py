"""Goal-directed conditional branch enforcement (paper Figure 7).

The algorithm, for one ⟨target expression, seed path⟩ observation:

1. Build the target constraint β = ``overflow(B)`` and ask the solver for an
   input satisfying β.  If that input triggers the overflow, done — no
   conditional branches were enforced (the common case in Table 2).
2. Otherwise compress the seed path, keep only the branches relevant to β,
   and repeat: find the *first flipped branch* — the earliest relevant
   conditional where the current candidate diverges from the seed path —
   conjoin its branch constraint, re-solve, re-test.  Stop when an input
   triggers the overflow, when the constraint becomes unsatisfiable, or when
   the candidate already follows the seed path on every relevant branch yet
   still does not trigger the overflow.

Enforcing only first-flipped branches is the paper's key idea: the candidate
is forced through the sanity checks it actually failed while remaining free
to take any path through the blocking checks.

Solver interaction is *incremental* when the solver configuration enables
sessions (the default): the loop opens one
:class:`~repro.smt.solver.SolverSession` per observation, pushes the target
constraint β once, then pushes one branch-constraint delta per iteration —
instead of rebuilding (and re-simplifying, re-splitting, re-blasting) the
whole conjunction list every time.  The session's persistent bit-blaster
and assumption-based CDCL reuse the shared prefix's CNF and learned
clauses across iterations; classification parity with the fresh-query
path is the invariant either way.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.branches import (
    BranchConstraint,
    compress_branches,
    extract_branch_constraints,
    first_unsatisfied,
    relevant_branches,
)
from repro.core.detection import CandidateEvaluation, ErrorDetector
from repro.core.inputs import GeneratedInput, InputGenerator
from repro.core.overflow import OverflowSpec, overflow_constraint
from repro.core.target import TargetObservation
from repro.smt import builder as smt
from repro.smt.solver import PortfolioSolver, SolverResult
from repro.smt.terms import Term


class EnforcementOutcome(enum.Enum):
    """How the enforcement loop for one observation terminated."""

    OVERFLOW_TRIGGERED = "overflow_triggered"
    TARGET_UNSATISFIABLE = "target_unsatisfiable"
    CONSTRAINTS_UNSATISFIABLE = "constraints_unsatisfiable"
    SEED_PATH_EXHAUSTED = "seed_path_exhausted"
    ITERATION_LIMIT = "iteration_limit"
    SOLVER_UNKNOWN = "solver_unknown"


@dataclass
class EnforcementStep:
    """One iteration of the enforcement loop (for reporting and ablation)."""

    iteration: int
    enforced_label: Optional[int]
    solver_status: str
    candidate_size: Optional[int]
    triggered: bool
    candidate_model: Optional[dict] = None


@dataclass
class EnforcementConfig:
    """Tuning knobs for the enforcement loop.

    ``flip_selection`` and ``filter_relevant`` exist for the ablation
    benchmarks: the paper's algorithm always enforces the *first* flipped
    branch in execution order and always discards branches that share no
    input variable with the target constraint.  Selecting the last/random
    flipped branch, or keeping irrelevant branches, lets the benchmarks
    quantify how much those two design choices matter.
    """

    max_iterations: int = 32
    overflow_spec: OverflowSpec = field(default_factory=OverflowSpec)
    flip_selection: str = "first"
    filter_relevant: bool = True


@dataclass
class EnforcementResult:
    """The outcome of running Figure 7 on one target observation."""

    observation: TargetObservation
    outcome: EnforcementOutcome
    target_constraint: Term
    enforced_branches: List[BranchConstraint] = field(default_factory=list)
    relevant_branch_count: int = 0
    triggering_input: Optional[bytes] = None
    triggering_model: Optional[dict] = None
    evaluation: Optional[CandidateEvaluation] = None
    steps: List[EnforcementStep] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def enforced_count(self) -> int:
        """Number of conditional branches enforced before success/termination."""
        return len(self.enforced_branches)

    @property
    def found_overflow(self) -> bool:
        """Whether an overflow-triggering input was generated."""
        return self.outcome is EnforcementOutcome.OVERFLOW_TRIGGERED


class GoalDirectedEnforcer:
    """Run the goal-directed conditional branch enforcement algorithm."""

    def __init__(
        self,
        solver: PortfolioSolver,
        input_generator: InputGenerator,
        detector: ErrorDetector,
        config: Optional[EnforcementConfig] = None,
    ) -> None:
        self.solver = solver
        self.input_generator = input_generator
        self.detector = detector
        self.config = config or EnforcementConfig()

    # ------------------------------------------------------------------
    def run(self, observation: TargetObservation) -> EnforcementResult:
        """Run the algorithm for one ⟨target expression, seed path⟩ pair."""
        started = time.perf_counter()
        site_label = observation.site.site_label

        if observation.size_expression is None:
            return self._finish(
                EnforcementResult(
                    observation=observation,
                    outcome=EnforcementOutcome.TARGET_UNSATISFIABLE,
                    target_constraint=smt.bool_const(False),
                ),
                started,
            )

        beta = overflow_constraint(
            observation.size_expression, self.config.overflow_spec
        )
        result = EnforcementResult(
            observation=observation,
            outcome=EnforcementOutcome.ITERATION_LIMIT,
            target_constraint=beta,
        )

        # One incremental session per observation: β is pushed once, each
        # iteration pushes only its branch-constraint delta.
        session = (
            self.solver.open_session()
            if self.solver.config.enable_sessions
            else None
        )

        # Step 1: solve the target constraint alone.
        if session is not None:
            session.push(beta)
            solver_result = session.check()
        else:
            solver_result = self.solver.check([beta])
        if solver_result.is_unsat:
            result.outcome = EnforcementOutcome.TARGET_UNSATISFIABLE
            return self._finish(result, started)
        if not solver_result.is_sat:
            result.outcome = EnforcementOutcome.SOLVER_UNKNOWN
            return self._finish(result, started)

        candidate = self.input_generator.generate(solver_result.model)
        evaluation = self.detector.evaluate(candidate.data, site_label)
        result.steps.append(
            EnforcementStep(
                iteration=0,
                enforced_label=None,
                solver_status=solver_result.status,
                candidate_size=evaluation.requested_size,
                triggered=evaluation.triggers_overflow,
                candidate_model=solver_result.model.as_dict(),
            )
        )
        if evaluation.triggers_overflow:
            return self._succeed(result, candidate, evaluation, started)

        # Step 2: prepare the relevant compressed seed-path constraints.
        all_constraints = extract_branch_constraints(observation.seed_path)
        compressed = compress_branches(all_constraints)
        if self.config.filter_relevant:
            relevant = relevant_branches(compressed, beta)
        else:
            relevant = compressed
        result.relevant_branch_count = len(relevant)

        enforced: List[BranchConstraint] = []
        previous_candidate = candidate

        for iteration in range(1, self.config.max_iterations + 1):
            assignment = self.input_generator.assignment_for(
                previous_candidate.data, range(len(previous_candidate.data))
            )
            flipped = self._select_flipped(relevant, enforced, assignment)
            if flipped is None:
                # The candidate follows the seed path at every relevant
                # branch yet still does not trigger the overflow: the sanity
                # checks prevent any overflow at this site.
                result.outcome = EnforcementOutcome.SEED_PATH_EXHAUSTED
                return self._finish(result, started)

            enforced.append(flipped)
            result.enforced_branches = list(enforced)
            if session is not None:
                session.push(flipped.condition)
                solver_result = session.check()
            else:
                constraints = [beta] + [b.condition for b in enforced]
                solver_result = self.solver.check(constraints)
            if solver_result.is_unsat:
                result.outcome = EnforcementOutcome.CONSTRAINTS_UNSATISFIABLE
                result.steps.append(
                    EnforcementStep(
                        iteration=iteration,
                        enforced_label=flipped.label,
                        solver_status=solver_result.status,
                        candidate_size=None,
                        triggered=False,
                    )
                )
                return self._finish(result, started)
            if not solver_result.is_sat:
                result.outcome = EnforcementOutcome.SOLVER_UNKNOWN
                return self._finish(result, started)

            candidate = self.input_generator.generate(solver_result.model)
            evaluation = self.detector.evaluate(candidate.data, site_label)
            result.steps.append(
                EnforcementStep(
                    iteration=iteration,
                    enforced_label=flipped.label,
                    solver_status=solver_result.status,
                    candidate_size=evaluation.requested_size,
                    triggered=evaluation.triggers_overflow,
                    candidate_model=solver_result.model.as_dict(),
                )
            )
            if evaluation.triggers_overflow:
                return self._succeed(result, candidate, evaluation, started)
            previous_candidate = candidate

        result.outcome = EnforcementOutcome.ITERATION_LIMIT
        return self._finish(result, started)

    # ------------------------------------------------------------------
    def _select_flipped(
        self,
        relevant: Sequence[BranchConstraint],
        enforced: Sequence[BranchConstraint],
        assignment,
    ) -> Optional[BranchConstraint]:
        """Pick which flipped branch to enforce next.

        The paper's algorithm takes the first flipped branch in execution
        order; the other modes exist only for the ablation study.
        """
        if self.config.flip_selection == "first":
            return first_unsatisfied(relevant, assignment)
        already = {id(branch) for branch in enforced}
        unsatisfied = [
            branch
            for branch in sorted(relevant, key=lambda b: b.first_sequence_index)
            if id(branch) not in already and not branch.satisfied_by(assignment)
        ]
        if not unsatisfied:
            # Fall back to the paper's definition so that termination
            # behaviour (seed path exhausted) stays identical.
            return first_unsatisfied(relevant, assignment)
        if self.config.flip_selection == "last":
            return unsatisfied[-1]
        if self.config.flip_selection == "random":
            import random

            return random.Random(len(enforced)).choice(unsatisfied)
        raise ValueError(f"unknown flip_selection {self.config.flip_selection!r}")

    def _succeed(
        self,
        result: EnforcementResult,
        candidate: GeneratedInput,
        evaluation: CandidateEvaluation,
        started: float,
    ) -> EnforcementResult:
        result.outcome = EnforcementOutcome.OVERFLOW_TRIGGERED
        result.triggering_input = candidate.data
        result.triggering_model = candidate.model.as_dict()
        result.evaluation = evaluation
        return self._finish(result, started)

    @staticmethod
    def _finish(result: EnforcementResult, started: float) -> EnforcementResult:
        result.elapsed_seconds = time.perf_counter() - started
        return result
