"""Goal-directed conditional branch enforcement (paper Figure 7).

The algorithm, for one ⟨target expression, seed path⟩ observation:

1. Build the target constraint β = ``overflow(B)`` and ask the solver for an
   input satisfying β.  If that input triggers the overflow, done — no
   conditional branches were enforced (the common case in Table 2).
2. Otherwise compress the seed path, keep only the branches relevant to β,
   and repeat: find the *first flipped branch* — the earliest relevant
   conditional where the current candidate diverges from the seed path —
   conjoin its branch constraint, re-solve, re-test.  Stop when an input
   triggers the overflow, when the constraint becomes unsatisfiable, or when
   the candidate already follows the seed path on every relevant branch yet
   still does not trigger the overflow.

Enforcing only first-flipped branches is the paper's key idea: the candidate
is forced through the sanity checks it actually failed while remaining free
to take any path through the blocking checks.

Solver interaction is *incremental* when the solver configuration enables
sessions (the default): the loop drives one
:class:`~repro.smt.solver.SolverSession` — held open across all of a
site's observations when ``reuse_sessions`` is on, so the persistent
bit-blaster and learned clauses survive from one observation to the next —
pushes the target constraint β once per observation, then pushes one
branch-constraint delta per iteration instead of rebuilding (and
re-simplifying, re-splitting, re-blasting) the whole conjunction list
every time.  Classification parity with the fresh-query path is the
invariant either way.

**UNSAT-core guidance** (``SolverConfig.enable_unsat_cores``, on by
default): every UNSAT verdict carries a subset of the pushed conjuncts
that is already jointly infeasible (precise final-conflict cores from the
session's assumption-based CDCL, component- or whole-conjunction-level
cores from the cheaper layers).  The enforcer accumulates these cores for
the lifetime of the site and *prunes* any later candidate query — the
initial β check or a flipped-branch enforcement check — whose conjunct
set subsumes an accumulated core: a superset of an unsatisfiable set is
unsatisfiable, so the verdict is synthesized without touching the solver.
Because subsumption only ever replaces a solver call that would have
returned UNSAT, the guided loop takes exactly the decisions the unguided
loop takes and site classifications are identical by construction (the
one principled gap: a query the solver would have *timed out* on — budget
UNKNOWN — can be answered UNSAT by a core, which is strictly more
accurate; ``benchmarks/bench_enforcement.py`` gates registry-wide parity
empirically).  In the ablation selection modes (``flip_selection`` of
``last``/``random``), candidates disjoint from every accumulated core are
additionally preferred — those modes already deviate from the paper's
first-flip order, and steering them away from known-infeasible territory
is exactly the core's job.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import AbstractSet, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.branches import (
    BranchConstraint,
    compress_branches,
    extract_branch_constraints,
    first_unsatisfied,
    relevant_branches,
)
from repro.core.detection import CandidateEvaluation, ErrorDetector
from repro.core.inputs import GeneratedInput, InputGenerator
from repro.core.overflow import OverflowSpec, overflow_constraint
from repro.core.target import TargetObservation
from repro.obs.trace import TRACER
from repro.smt import builder as smt
from repro.smt.sampler import split_conjuncts
from repro.smt.simplify import simplify
from repro.smt.solver import (
    TELEMETRY,
    PortfolioSolver,
    SolverResult,
    SolverSession,
    SolverStatus,
)
from repro.smt.terms import Term


class EnforcementOutcome(enum.Enum):
    """How the enforcement loop for one observation terminated."""

    OVERFLOW_TRIGGERED = "overflow_triggered"
    TARGET_UNSATISFIABLE = "target_unsatisfiable"
    CONSTRAINTS_UNSATISFIABLE = "constraints_unsatisfiable"
    SEED_PATH_EXHAUSTED = "seed_path_exhausted"
    ITERATION_LIMIT = "iteration_limit"
    SOLVER_UNKNOWN = "solver_unknown"


@dataclass
class EnforcementStep:
    """One iteration of the enforcement loop (for reporting and ablation)."""

    iteration: int
    enforced_label: Optional[int]
    solver_status: str
    candidate_size: Optional[int]
    triggered: bool
    candidate_model: Optional[dict] = None


@dataclass
class EnforcementConfig:
    """Tuning knobs for the enforcement loop.

    ``flip_selection`` and ``filter_relevant`` exist for the ablation
    benchmarks: the paper's algorithm always enforces the *first* flipped
    branch in execution order and always discards branches that share no
    input variable with the target constraint.  Selecting the last/random
    flipped branch, or keeping irrelevant branches, lets the benchmarks
    quantify how much those two design choices matter.
    """

    max_iterations: int = 32
    overflow_spec: OverflowSpec = field(default_factory=OverflowSpec)
    flip_selection: str = "first"
    filter_relevant: bool = True


@dataclass
class EnforcementResult:
    """The outcome of running Figure 7 on one target observation."""

    observation: TargetObservation
    outcome: EnforcementOutcome
    target_constraint: Term
    enforced_branches: List[BranchConstraint] = field(default_factory=list)
    relevant_branch_count: int = 0
    triggering_input: Optional[bytes] = None
    triggering_model: Optional[dict] = None
    evaluation: Optional[CandidateEvaluation] = None
    steps: List[EnforcementStep] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def enforced_count(self) -> int:
        """Number of conditional branches enforced before success/termination."""
        return len(self.enforced_branches)

    @property
    def found_overflow(self) -> bool:
        """Whether an overflow-triggering input was generated."""
        return self.outcome is EnforcementOutcome.OVERFLOW_TRIGGERED


class GoalDirectedEnforcer:
    """Run the goal-directed conditional branch enforcement algorithm.

    One enforcer serves one target site (``analyze_site`` constructs one
    per site) and owns two pieces of cross-observation state:

    * a reusable :class:`~repro.smt.solver.SolverSession` (with
      ``reuse_sessions``), popped back to an empty stack between
      observations so the persistent bit-blaster's CNF and the CDCL's
      learned clauses — both derived from Tseitin definitions alone, hence
      sound for any later conjunction — carry over;
    * the accumulated UNSAT cores (with ``enable_unsat_cores``), used to
      answer later queries whose conjunct set subsumes a core without a
      solver call.  Soundness invariant: a core is a set of conjuncts whose
      conjunction is unsatisfiable, so any superset query is UNSAT — the
      synthesized verdict is one the solver was guaranteed to return.
    """

    def __init__(
        self,
        solver: PortfolioSolver,
        input_generator: InputGenerator,
        detector: ErrorDetector,
        config: Optional[EnforcementConfig] = None,
    ) -> None:
        self.solver = solver
        self.input_generator = input_generator
        self.detector = detector
        self.config = config or EnforcementConfig()
        self._session: Optional[SolverSession] = None
        self._cores: List[FrozenSet[Term]] = []

    # ------------------------------------------------------------------
    @property
    def accumulated_cores(self) -> Tuple[FrozenSet[Term], ...]:
        """UNSAT cores learned at this site so far (each a conjunct set)."""
        return tuple(self._cores)

    # ------------------------------------------------------------------
    def run(self, observation: TargetObservation) -> EnforcementResult:
        """Run the algorithm for one ⟨target expression, seed path⟩ pair."""
        with TRACER.span("enforce", site=observation.site.site_label):
            return self._run(observation)

    def _run(self, observation: TargetObservation) -> EnforcementResult:
        started = time.perf_counter()
        site_label = observation.site.site_label

        if observation.size_expression is None:
            return self._finish(
                EnforcementResult(
                    observation=observation,
                    outcome=EnforcementOutcome.TARGET_UNSATISFIABLE,
                    target_constraint=smt.bool_const(False),
                ),
                started,
            )

        beta = overflow_constraint(
            observation.size_expression, self.config.overflow_spec
        )
        result = EnforcementResult(
            observation=observation,
            outcome=EnforcementOutcome.ITERATION_LIMIT,
            target_constraint=beta,
        )

        # One incremental session per observation — or one per *site* with
        # ``reuse_sessions`` — β is pushed once, each iteration pushes only
        # its branch-constraint delta.
        session = self._acquire_session()

        # Step 1: solve the target constraint alone.
        if session is not None:
            session.push(beta)
            active: Set[Term] = set(session.conjuncts)
        else:
            active = set(split_conjuncts(simplify(beta)))
        solver_result = self._check(session, [beta], active)
        if solver_result.is_unsat:
            result.outcome = EnforcementOutcome.TARGET_UNSATISFIABLE
            return self._finish(result, started)
        if not solver_result.is_sat:
            result.outcome = EnforcementOutcome.SOLVER_UNKNOWN
            return self._finish(result, started)

        candidate = self.input_generator.generate(solver_result.model)
        with TRACER.span("screen", site=site_label, iteration=0):
            evaluation = self.detector.evaluate(candidate.data, site_label)
        result.steps.append(
            EnforcementStep(
                iteration=0,
                enforced_label=None,
                solver_status=solver_result.status,
                candidate_size=evaluation.requested_size,
                triggered=evaluation.triggers_overflow,
                candidate_model=solver_result.model.as_dict(),
            )
        )
        if evaluation.triggers_overflow:
            return self._succeed(result, candidate, evaluation, started)

        # Step 2: prepare the relevant compressed seed-path constraints.
        all_constraints = extract_branch_constraints(observation.seed_path)
        compressed = compress_branches(all_constraints)
        if self.config.filter_relevant:
            relevant = relevant_branches(compressed, beta)
        else:
            relevant = compressed
        result.relevant_branch_count = len(relevant)

        enforced: List[BranchConstraint] = []
        previous_candidate = candidate

        for iteration in range(1, self.config.max_iterations + 1):
            assignment = self.input_generator.assignment_for(
                previous_candidate.data, range(len(previous_candidate.data))
            )
            flipped = self._select_flipped(relevant, enforced, assignment)
            if flipped is None:
                # The candidate follows the seed path at every relevant
                # branch yet still does not trigger the overflow: the sanity
                # checks prevent any overflow at this site.
                result.outcome = EnforcementOutcome.SEED_PATH_EXHAUSTED
                return self._finish(result, started)

            enforced.append(flipped)
            result.enforced_branches = list(enforced)
            if session is not None:
                session.push(flipped.condition)
                active = set(session.conjuncts)
                constraints = []
            else:
                constraints = [beta] + [b.condition for b in enforced]
                active |= set(split_conjuncts(simplify(flipped.condition)))
            solver_result = self._check(session, constraints, active)
            if solver_result.is_unsat:
                result.outcome = EnforcementOutcome.CONSTRAINTS_UNSATISFIABLE
                result.steps.append(
                    EnforcementStep(
                        iteration=iteration,
                        enforced_label=flipped.label,
                        solver_status=solver_result.status,
                        candidate_size=None,
                        triggered=False,
                    )
                )
                return self._finish(result, started)
            if not solver_result.is_sat:
                result.outcome = EnforcementOutcome.SOLVER_UNKNOWN
                return self._finish(result, started)

            candidate = self.input_generator.generate(solver_result.model)
            with TRACER.span("screen", site=site_label, iteration=iteration):
                evaluation = self.detector.evaluate(candidate.data, site_label)
            result.steps.append(
                EnforcementStep(
                    iteration=iteration,
                    enforced_label=flipped.label,
                    solver_status=solver_result.status,
                    candidate_size=evaluation.requested_size,
                    triggered=evaluation.triggers_overflow,
                    candidate_model=solver_result.model.as_dict(),
                )
            )
            if evaluation.triggers_overflow:
                return self._succeed(result, candidate, evaluation, started)
            previous_candidate = candidate

        result.outcome = EnforcementOutcome.ITERATION_LIMIT
        return self._finish(result, started)

    # ------------------------------------------------------------------
    def _acquire_session(self) -> Optional[SolverSession]:
        """The observation's solver session, or ``None`` on the fresh path.

        With ``reuse_sessions`` the site's one session is popped back to an
        empty constraint stack and handed out again: everything that
        survives the pops (the blaster's Tseitin definitions, the CDCL's
        learned clauses, activities and phases) is implied by — or heuristic
        state over — the definitional CNF alone, so reuse can steer *which*
        model a later check finds but never its status.
        """
        config = self.solver.config
        if not config.enable_sessions:
            return None
        session = self._session if config.reuse_sessions else None
        if session is not None:
            while len(session):
                session.pop()
            TELEMETRY.record_session_reuse()
            return session
        session = self.solver.open_session()
        if config.reuse_sessions:
            self._session = session
        return session

    def _check(
        self,
        session: Optional[SolverSession],
        constraints: Sequence[Term],
        active: AbstractSet[Term],
    ) -> SolverResult:
        """Decide the current conjunction, consulting accumulated cores.

        ``active`` is the conjunct set the query denotes (the session's
        stack, or the split/simplified fresh-path constraints — identical
        by construction).  When core guidance is on and ``active`` subsumes
        an accumulated core, the UNSAT verdict is synthesized without a
        solver call; this cannot diverge from the unguided path because the
        solver is guaranteed to answer a superset of an unsatisfiable set
        with UNSAT.  Every solver-derived UNSAT feeds its core (or, absent
        one, the full conjunct set) back into the accumulator.
        """
        guided = self.solver.config.enable_unsat_cores
        if guided and any(core <= active for core in self._cores):
            TELEMETRY.record_core_pruned()
            return SolverResult(SolverStatus.UNSAT, reason="unsat-core")
        if session is not None:
            result = session.check()
        else:
            result = self.solver.check(constraints)
        if guided and result.is_unsat:
            core = frozenset(result.unsat_core or active)
            if core and core not in self._cores:
                self._cores.append(core)
                TELEMETRY.record_core_extracted()
        return result

    def _disjoint_from_cores(self, branch: BranchConstraint) -> bool:
        """Whether a candidate's conjuncts avoid every accumulated core."""
        conjuncts = set(split_conjuncts(simplify(branch.condition)))
        return all(not (core & conjuncts) for core in self._cores)

    # ------------------------------------------------------------------
    def _select_flipped(
        self,
        relevant: Sequence[BranchConstraint],
        enforced: Sequence[BranchConstraint],
        assignment,
    ) -> Optional[BranchConstraint]:
        """Pick which flipped branch to enforce next.

        The paper's algorithm takes the first flipped branch in execution
        order; the other modes exist only for the ablation study.  In those
        modes, candidates disjoint from every accumulated UNSAT core are
        preferred when core guidance is on — the paper path is left
        untouched (its selection is part of the parity contract).
        """
        if self.config.flip_selection == "first":
            return first_unsatisfied(relevant, assignment)
        already = {id(branch) for branch in enforced}
        unsatisfied = [
            branch
            for branch in sorted(relevant, key=lambda b: b.first_sequence_index)
            if id(branch) not in already and not branch.satisfied_by(assignment)
        ]
        if not unsatisfied:
            # Fall back to the paper's definition so that termination
            # behaviour (seed path exhausted) stays identical.
            return first_unsatisfied(relevant, assignment)
        if self.solver.config.enable_unsat_cores and len(unsatisfied) > 1:
            clear = [b for b in unsatisfied if self._disjoint_from_cores(b)]
            if clear:
                unsatisfied = clear
        if self.config.flip_selection == "last":
            return unsatisfied[-1]
        if self.config.flip_selection == "random":
            import random

            return random.Random(len(enforced)).choice(unsatisfied)
        raise ValueError(f"unknown flip_selection {self.config.flip_selection!r}")

    def _succeed(
        self,
        result: EnforcementResult,
        candidate: GeneratedInput,
        evaluation: CandidateEvaluation,
        started: float,
    ) -> EnforcementResult:
        result.outcome = EnforcementOutcome.OVERFLOW_TRIGGERED
        result.triggering_input = candidate.data
        result.triggering_model = candidate.model.as_dict()
        result.evaluation = evaluation
        return self._finish(result, started)

    @staticmethod
    def _finish(result: EnforcementResult, started: float) -> EnforcementResult:
        result.elapsed_seconds = time.perf_counter() - started
        return result
