"""Tests for lowering (procedure inlining, labelling) and the Program container."""

import pytest

from repro.lang.ast import AllocStmt, AssignStmt, IfStmt, SeqStmt, WhileStmt
from repro.lang.lowering import LoweringError, lower_program
from repro.lang.parser import parse_program
from repro.lang.program import Program, ProgramError


def _lower(source: str) -> SeqStmt:
    return lower_program(parse_program(source))


class TestLowering:
    def test_entry_must_exist(self):
        with pytest.raises(LoweringError):
            _lower("proc helper() { skip; }")

    def test_entry_must_take_no_parameters(self):
        with pytest.raises(LoweringError):
            _lower("proc main(a) { skip; }")

    def test_simple_call_is_inlined(self):
        body = _lower(
            """
            proc double(v) { return v * 2; }
            proc main() { x = double(21); }
            """
        )
        # No CallExpr/CallStmt survive; an assignment computes the result.
        program = Program("p", body)
        assert program.statement_count() > 3

    def test_inlined_call_produces_correct_value(self):
        from repro.exec.concrete import ConcreteInterpreter

        program = Program.from_source(
            """
            proc double(v) { return v * 2; }
            proc main() { x = double(21); }
            """
        )
        report = ConcreteInterpreter(program).run(b"")
        assert report.final_environment["x"][0] == 42

    def test_nested_calls_inline(self):
        from repro.exec.concrete import ConcreteInterpreter

        program = Program.from_source(
            """
            proc inc(v) { return v + 1; }
            proc double_inc(v) { return inc(v) * 2; }
            proc main() { x = double_inc(4); }
            """
        )
        report = ConcreteInterpreter(program).run(b"")
        assert report.final_environment["x"][0] == 10

    def test_two_calls_get_independent_locals(self):
        from repro.exec.concrete import ConcreteInterpreter

        program = Program.from_source(
            """
            proc pick(v) { local = v + 1; return local; }
            proc main() { a = pick(1); b = pick(10); }
            """
        )
        env = ConcreteInterpreter(program).run(b"").final_environment
        assert env["a"][0] == 2 and env["b"][0] == 11

    def test_recursion_rejected(self):
        with pytest.raises(LoweringError):
            _lower(
                """
                proc loop(v) { return loop(v); }
                proc main() { x = loop(1); }
                """
            )

    def test_call_to_undefined_procedure_rejected(self):
        with pytest.raises(LoweringError):
            _lower("proc main() { x = nothing(); }")

    def test_wrong_arity_rejected(self):
        with pytest.raises(LoweringError):
            _lower("proc f(a, b) { return a; } proc main() { x = f(1); }")

    def test_call_in_while_condition_rejected(self):
        with pytest.raises(LoweringError):
            _lower(
                """
                proc f() { return 1; }
                proc main() { while (f() > 0) { skip; } }
                """
            )

    def test_early_return_rejected(self):
        with pytest.raises(LoweringError):
            _lower(
                """
                proc f(v) { return v; x = 1; }
                proc main() { y = f(2); }
                """
            )

    def test_return_value_at_top_level_rejected(self):
        with pytest.raises(LoweringError):
            _lower("proc main() { return 3; }")

    def test_labels_are_unique_and_total(self):
        program = Program.from_source(
            """
            proc main() {
              x = 1;
              if (x > 0) { y = 2; } else { y = 3; }
              while (y > 0) { y = y - 1; }
            }
            """
        )
        labels = [s.label for s in program.statements()]
        assert len(labels) == len(set(labels))
        assert all(label is not None for label in labels)


class TestProgram:
    SOURCE = """
    proc main() {
      size = input(0) * 4;
      buf = alloc(size) @ "site.a";
      other = alloc(64) @ "site.b";
      if (size > 8) { buf[0] = 1; }
    }
    """

    def test_from_source_builds(self):
        program = Program.from_source(self.SOURCE)
        assert program.statement_count() >= 5

    def test_allocation_sites_found(self):
        program = Program.from_source(self.SOURCE)
        assert len(program.allocation_sites()) == 2

    def test_tag_lookup(self):
        program = Program.from_source(self.SOURCE)
        label = program.label_of_tag("site.a")
        assert isinstance(program.statement_at(label), AllocStmt)
        assert program.tag_of_label(label) == "site.a"

    def test_unknown_tag_raises(self):
        program = Program.from_source(self.SOURCE)
        with pytest.raises(ProgramError):
            program.statement_tagged("missing")

    def test_unknown_label_raises(self):
        program = Program.from_source(self.SOURCE)
        with pytest.raises(ProgramError):
            program.statement_at(10_000)

    def test_conditional_labels(self):
        program = Program.from_source(self.SOURCE)
        conditionals = program.conditional_labels()
        assert len(conditionals) == 1
        assert isinstance(program.statement_at(conditionals[0]), IfStmt)

    def test_duplicate_tags_rejected(self):
        source = """
        proc main() {
          a = alloc(4) @ "dup";
          b = alloc(4) @ "dup";
        }
        """
        with pytest.raises(ProgramError):
            Program.from_source(source)

    def test_repr_mentions_counts(self):
        program = Program.from_source(self.SOURCE)
        assert "allocation_sites=2" in repr(program)
