"""Tests for the DSL lexer and parser."""

import pytest

from repro.lang.ast import (
    AllocStmt,
    AssignStmt,
    BinaryExpr,
    BinaryOp,
    CallExpr,
    CallStmt,
    ConstExpr,
    HaltStmt,
    IfStmt,
    InputByteExpr,
    LoadExpr,
    ReturnStmt,
    SkipStmt,
    StoreStmt,
    UnaryExpr,
    UnaryOp,
    VarExpr,
    WarnStmt,
    WhileStmt,
)
from repro.lang.lexer import LexError, Lexer, TokenKind
from repro.lang.parser import ParseError, parse_program


class TestLexer:
    def _kinds(self, source):
        return [t.kind for t in Lexer(source).tokens()]

    def test_identifiers_and_numbers(self):
        tokens = Lexer("width 42 0x1F").tokens()
        assert tokens[0].kind is TokenKind.IDENT
        assert tokens[1].value == 42
        assert tokens[2].value == 0x1F

    def test_keywords_recognised(self):
        tokens = Lexer("if while proc halt").tokens()
        assert all(t.kind is TokenKind.KEYWORD for t in tokens[:-1])

    def test_underscore_separated_number(self):
        assert Lexer("1_000_000").tokens()[0].value == 1_000_000

    def test_string_literal_with_escape(self):
        token = Lexer('"line\\none"').tokens()[0]
        assert token.kind is TokenKind.STRING
        assert token.text == "line\none"

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            Lexer('"oops').tokens()

    def test_line_comments_skipped(self):
        tokens = Lexer("# comment\nx // also\ny").tokens()
        names = [t.text for t in tokens if t.kind is TokenKind.IDENT]
        assert names == ["x", "y"]

    def test_block_comments_skipped(self):
        tokens = Lexer("a /* b c */ d").tokens()
        names = [t.text for t in tokens if t.kind is TokenKind.IDENT]
        assert names == ["a", "d"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            Lexer("/* never closed").tokens()

    def test_multi_character_operators(self):
        texts = [t.text for t in Lexer("a <= b << 2 && c != d").tokens()[:-1]]
        assert "<=" in texts and "<<" in texts and "&&" in texts and "!=" in texts

    def test_signed_operator_does_not_eat_identifiers(self):
        tokens = Lexer("a <size").tokens()
        texts = [t.text for t in tokens[:-1]]
        assert texts == ["a", "<", "size"]

    def test_locations_tracked(self):
        token = Lexer("a\n  b").tokens()[1]
        assert token.loc.line == 2
        assert token.loc.column == 3

    def test_unexpected_character_raises(self):
        with pytest.raises(LexError):
            Lexer("a $ b").tokens()


def _parse_main(body: str):
    unit = parse_program("proc main() { " + body + " }")
    return unit.procedures["main"].body.statements


class TestParserStatements:
    def test_assignment(self):
        (stmt,) = _parse_main("x = 1 + 2;")
        assert isinstance(stmt, AssignStmt)
        assert isinstance(stmt.value, BinaryExpr)

    def test_alloc_with_tag(self):
        (stmt,) = _parse_main('buf = alloc(size) @ "png.c@203";')
        assert isinstance(stmt, AllocStmt)
        assert stmt.tag == "png.c@203"

    def test_store(self):
        (stmt,) = _parse_main("buf[3] = 9;")
        assert isinstance(stmt, StoreStmt)
        assert stmt.base == "buf"

    def test_load_expression(self):
        (stmt,) = _parse_main("x = buf[i + 1];")
        assert isinstance(stmt.value, LoadExpr)

    def test_if_else(self):
        (stmt,) = _parse_main("if (x > 3) { y = 1; } else { y = 2; }")
        assert isinstance(stmt, IfStmt)
        assert len(stmt.then_body) == 1 and len(stmt.else_body) == 1

    def test_else_if_chain(self):
        (stmt,) = _parse_main(
            "if (x > 3) { y = 1; } else if (x > 1) { y = 2; } else { y = 3; }"
        )
        nested = stmt.else_body.statements[0]
        assert isinstance(nested, IfStmt)

    def test_while(self):
        (stmt,) = _parse_main("while (i < 10) { i = i + 1; }")
        assert isinstance(stmt, WhileStmt)

    def test_halt_and_warn(self):
        halt, warn = _parse_main('halt "bad"; warn "odd";')
        assert isinstance(halt, HaltStmt) and halt.message == "bad"
        assert isinstance(warn, WarnStmt) and warn.message == "odd"

    def test_skip_and_return(self):
        skip, ret = _parse_main("skip; return x + 1;")
        assert isinstance(skip, SkipStmt)
        assert isinstance(ret, ReturnStmt)

    def test_call_statement(self):
        (stmt,) = _parse_main("process(a, 2);")
        assert isinstance(stmt, CallStmt)
        assert stmt.callee == "process" and len(stmt.arguments) == 2

    def test_call_expression(self):
        (stmt,) = _parse_main("x = read_be32(16);")
        assert isinstance(stmt.value, CallExpr)

    def test_input_expression(self):
        (stmt,) = _parse_main("x = input(4) + input(5);")
        assert isinstance(stmt.value.left, InputByteExpr)

    def test_missing_semicolon_raises(self):
        with pytest.raises(ParseError):
            _parse_main("x = 1")

    def test_unknown_top_level_raises(self):
        with pytest.raises(ParseError):
            parse_program("x = 1;")

    def test_duplicate_procedure_raises(self):
        with pytest.raises(ParseError):
            parse_program("proc f() { skip; } proc f() { skip; }")


class TestParserExpressions:
    def _expr(self, text):
        (stmt,) = _parse_main(f"x = {text};")
        return stmt.value

    def test_precedence_mul_over_add(self):
        expr = self._expr("1 + 2 * 3")
        assert expr.op is BinaryOp.ADD
        assert expr.right.op is BinaryOp.MUL

    def test_precedence_shift_below_add(self):
        expr = self._expr("a + 1 << 2")
        assert expr.op is BinaryOp.SHL

    def test_precedence_compare_below_bitor(self):
        expr = self._expr("a | b == 3")
        assert expr.op is BinaryOp.EQ

    def test_parentheses_override(self):
        expr = self._expr("(1 + 2) * 3")
        assert expr.op is BinaryOp.MUL

    def test_logical_operators(self):
        expr = self._expr("a < 3 && b > 4 || c == 5")
        assert expr.op is BinaryOp.OR

    def test_unary_operators(self):
        assert self._expr("-a").op is UnaryOp.NEG
        assert self._expr("~a").op is UnaryOp.BITNOT
        assert self._expr("!a").op is UnaryOp.NOT
        assert self._expr("abs(a - b)").op is UnaryOp.ABS

    def test_signed_comparisons(self):
        assert self._expr("a <s b").op is BinaryOp.SLT
        assert self._expr("a >=s b").op is BinaryOp.SGE

    def test_hex_and_bool_literals(self):
        assert self._expr("0xFF").value == 255
        assert self._expr("true").value == 1
        assert self._expr("false").value == 0


class TestConstants:
    def test_constant_substitution(self):
        unit = parse_program(
            "const LIMIT = 1000; proc main() { x = LIMIT + 1; }"
        )
        stmt = unit.procedures["main"].body.statements[0]
        assert isinstance(stmt.value.left, ConstExpr)
        assert stmt.value.left.value == 1000

    def test_constant_expression_initializer(self):
        unit = parse_program("const AREA = 6000 * 6000; proc main() { skip; }")
        assert unit.constants["AREA"] == 36_000_000

    def test_constant_referencing_constant(self):
        unit = parse_program(
            "const A = 4; const B = A * 2; proc main() { skip; }"
        )
        assert unit.constants["B"] == 8

    def test_non_constant_initializer_raises(self):
        with pytest.raises(ParseError):
            parse_program("const BAD = width + 1; proc main() { skip; }")
