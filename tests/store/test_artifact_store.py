"""The unified store layer: content addressing, merge-on-save, locking.

Every persistent artifact in the system (solver-cache verdicts, UNSAT
cores, CNF skeletons, witness records) rides on this layer, so its
contract is tested directly: records survive round trips, concurrent
saves take the union, stamps invalidate cold, orphaned shard files never
resurrect, and the save lock is exclusive yet recoverable when its
holder dies.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import threading

import pytest

from repro.store import ArtifactStore, DirectoryLock, StoreRecord, content_key
from repro.store.locking import DEFAULT_TIMEOUT_SECONDS

FP = ["test-fingerprint", 1]


def _store(tmp_path, **kwargs):
    kwargs.setdefault("version", 7)
    return ArtifactStore(str(tmp_path), **kwargs)


def _record(kind, payload):
    return StoreRecord(kind, content_key(kind, payload), payload)


class TestContentKey:
    def test_deterministic_across_dict_ordering(self):
        assert content_key("k", {"a": 1, "b": 2}) == content_key(
            "k", {"b": 2, "a": 1}
        )

    def test_kind_namespaces_the_hash(self):
        assert content_key("query", [1, 2]) != content_key("component", [1, 2])


class TestRoundTrip:
    def test_save_then_load_restores_every_record(self, tmp_path):
        store = _store(tmp_path)
        records = [
            _record("alpha", {"x": 1}),
            _record("alpha", {"x": 2}),
            _record("beta", [1, 2, 3]),
        ]
        assert store.save(FP, records) == 3
        loaded = store.load(FP)
        assert sorted((r.kind, r.key) for r in loaded) == sorted(
            (r.kind, r.key) for r in records
        )
        by_slot = {(r.kind, r.key): r.payload for r in loaded}
        for record in records:
            assert by_slot[(record.kind, record.key)] == record.payload

    def test_duplicate_records_store_once(self, tmp_path):
        store = _store(tmp_path)
        record = _record("alpha", {"x": 1})
        assert store.save(FP, [record, record]) == 1

    def test_meta_stamps_version_fingerprint_and_kinds(self, tmp_path):
        store = _store(tmp_path, version=7)
        store.save(FP, [_record("alpha", 1), _record("beta", 2)])
        meta = store.read_meta()
        assert meta["version"] == 7
        assert meta["fingerprint"] == FP
        assert meta["entries"] == 2
        assert meta["kinds"] == {"alpha": 1, "beta": 1}


class TestMergeOnSave:
    def test_two_saves_union(self, tmp_path):
        """The lost-update fix at its root: later saves merge, never clobber."""
        _store(tmp_path).save(FP, [_record("alpha", {"x": 1})])
        _store(tmp_path).save(FP, [_record("alpha", {"x": 2})])
        assert len(_store(tmp_path).load(FP)) == 2

    def test_replace_discards_on_disk_records(self, tmp_path):
        store = _store(tmp_path)
        store.save(FP, [_record("alpha", {"x": 1})])
        store.save(FP, [_record("alpha", {"x": 2})], replace=True)
        [record] = store.load(FP)
        assert record.payload == {"x": 2}

    def test_merge_record_resolves_collisions(self, tmp_path):
        store = _store(tmp_path)
        record = StoreRecord("alpha", "same-key", {"seen": 1})
        store.save(FP, [record])
        merged = store.save(
            FP,
            [StoreRecord("alpha", "same-key", {"seen": 5})],
            merge_record=lambda kind, old, new: {
                "seen": old["seen"] + new["seen"]
            },
        )
        assert merged == 1
        [out] = store.load(FP)
        assert out.payload == {"seen": 6}

    def test_merge_record_exception_keeps_incoming(self, tmp_path):
        store = _store(tmp_path)
        store.save(FP, [StoreRecord("alpha", "same-key", "bad-old")])

        def merge(kind, old, new):
            raise ValueError("undecodable existing payload")

        store.save(
            FP, [StoreRecord("alpha", "same-key", "good-new")], merge_record=merge
        )
        [out] = store.load(FP)
        assert out.payload == "good-new"

    def test_fingerprint_mismatch_save_is_cold_overwrite(self, tmp_path):
        store = _store(tmp_path)
        store.save(["other-config"], [_record("alpha", 1)])
        store.save(FP, [_record("alpha", 2)])
        [record] = store.load(FP)
        assert record.payload == 2


class TestInvalidation:
    def test_missing_dir_is_cold(self, tmp_path):
        assert _store(tmp_path / "nope").load(FP) == []

    def test_version_mismatch_is_cold(self, tmp_path):
        _store(tmp_path, version=7).save(FP, [_record("alpha", 1)])
        assert _store(tmp_path, version=8).load(FP) == []

    def test_fingerprint_mismatch_is_cold(self, tmp_path):
        store = _store(tmp_path)
        store.save(FP, [_record("alpha", 1)])
        assert store.load(["different"]) == []

    def test_corrupt_meta_is_cold(self, tmp_path):
        store = _store(tmp_path)
        store.save(FP, [_record("alpha", 1)])
        (tmp_path / "meta.json").write_text("][")
        assert store.load(FP) == []

    def test_corrupt_shard_loses_only_its_records(self, tmp_path):
        store = _store(tmp_path, shard_count=4)
        records = [_record("alpha", i) for i in range(16)]
        store.save(FP, records)
        shard_files = sorted(tmp_path.glob("shard-*.json"))
        assert len(shard_files) > 1
        lost = len(json.loads(shard_files[0].read_text()))
        shard_files[0].write_text("{ not json")
        assert len(store.load(FP)) == len(records) - lost

    def test_malformed_envelopes_are_skipped(self, tmp_path):
        store = _store(tmp_path, shard_count=1)
        store.save(FP, [_record("alpha", 1)])
        shard = tmp_path / "shard-00.json"
        envelopes = json.loads(shard.read_text())
        envelopes.extend(
            ["not-a-dict", {"k": "alpha"}, {"h": "key-only"}, {"k": 1, "h": "x", "d": 0}]
        )
        shard.write_text(json.dumps(envelopes))
        assert len(store.load(FP)) == 1


class TestOrphanedShards:
    def test_shrunk_shard_count_removes_stale_files(self, tmp_path):
        """Records re-sharded under a smaller count must not leave the old
        layout's files behind — a later wider layout would resurrect them."""
        wide = _store(tmp_path, shard_count=16)
        records = [_record("alpha", i) for i in range(64)]
        wide.save(FP, records)
        assert len(list(tmp_path.glob("shard-*.json"))) > 1

        narrow = _store(tmp_path, shard_count=1)
        narrow.save(FP, [_record("alpha", "extra")])
        assert sorted(p.name for p in tmp_path.glob("shard-*.json")) == [
            "shard-00.json"
        ]
        assert len(narrow.load(FP)) == len(records) + 1

    def test_regrowing_shard_count_sees_no_ghosts(self, tmp_path):
        wide = _store(tmp_path, shard_count=16)
        wide.save(FP, [_record("alpha", i) for i in range(64)])
        _store(tmp_path, shard_count=1).save(FP, [], replace=True)
        assert _store(tmp_path, shard_count=16).load(FP) == []


class TestDirectoryLock:
    def test_exclusive_and_context_managed(self, tmp_path):
        path = str(tmp_path / ".lock")
        with DirectoryLock(path) as lock:
            assert lock.held
            assert os.path.exists(path)
            other = DirectoryLock(path, timeout=0.2, poll=0.01)
            acquired_late = []
            thread = threading.Thread(
                target=lambda: (other.acquire(), acquired_late.append(True))
            )
            thread.start()
            thread.join(timeout=0.05)
            assert not acquired_late  # still blocked on the holder
            lock.release()
            thread.join(timeout=5)
            assert acquired_late
            other.release()
        assert not os.path.exists(path)

    def test_release_is_idempotent(self, tmp_path):
        lock = DirectoryLock(str(tmp_path / ".lock"))
        lock.acquire()
        lock.release()
        lock.release()
        assert not lock.held

    def test_reacquire_while_held_raises(self, tmp_path):
        with DirectoryLock(str(tmp_path / ".lock")) as lock:
            with pytest.raises(RuntimeError):
                lock.acquire()

    def test_stale_lock_is_broken_after_timeout(self, tmp_path):
        path = tmp_path / ".lock"
        path.write_text("99999")  # a holder that died long ago
        lock = DirectoryLock(str(path), timeout=0.1, poll=0.01)
        lock.acquire()  # must not deadlock
        assert lock.held
        lock.release()

    def test_fresh_holder_resets_patience(self, tmp_path):
        """A lock whose identity changes belongs to a live writer; the
        waiting breaker must start its deadline over instead of breaking."""
        path = tmp_path / ".lock"
        stop = threading.Event()

        def churn():
            # Simulate a sequence of short-lived live holders.
            while not stop.is_set():
                holder = DirectoryLock(str(path), timeout=1.0, poll=0.001)
                holder.acquire()
                holder.release()

        thread = threading.Thread(target=churn)
        thread.start()
        try:
            waiter = DirectoryLock(str(path), timeout=0.3, poll=0.001)
            waiter.acquire()
            assert waiter.held
            waiter.release()
        finally:
            stop.set()
            thread.join(timeout=5)

    def test_default_timeout_is_finite(self):
        assert 0 < DEFAULT_TIMEOUT_SECONDS < 60


def _stress_writer(root, index, barrier):
    from repro.store import ArtifactStore, StoreRecord, content_key

    store = ArtifactStore(root, version=7, shard_count=4)
    records = [
        StoreRecord("alpha", content_key("alpha", [index, j]), [index, j])
        for j in range(5)
    ]
    barrier.wait()
    store.save(["stress"], records)


class TestConcurrentMergeOnSave:
    def test_parallel_processes_lose_no_records(self, tmp_path):
        """N processes save disjoint record sets through one directory at
        once; merge-on-save under the lock must preserve the union."""
        ctx = multiprocessing.get_context("spawn")
        writer_count = 4
        barrier = ctx.Barrier(writer_count)
        processes = [
            ctx.Process(
                target=_stress_writer, args=(str(tmp_path), i, barrier)
            )
            for i in range(writer_count)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=60)
            assert process.exitcode == 0
        loaded = ArtifactStore(str(tmp_path), version=7, shard_count=4).load(
            ["stress"]
        )
        assert sorted(tuple(r.payload) for r in loaded) == sorted(
            (i, j) for i in range(writer_count) for j in range(5)
        )

    def test_parallel_threads_lose_no_records(self, tmp_path):
        signatures = list(range(12))

        def save_one(index):
            _store(tmp_path).save(FP, [_record("alpha", index)])

        threads = [
            threading.Thread(target=save_one, args=(i,)) for i in signatures
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(_store(tmp_path).load(FP)) == len(signatures)
