"""Tests for the goal-directed enforcement loop and the Diode engine on a
small synthetic application (fast), exercising every termination mode."""

import pytest

from repro.apps.appbase import Application, SiteExpectation
from repro.core.detection import ErrorDetector
from repro.core.enforcement import (
    EnforcementConfig,
    EnforcementOutcome,
    GoalDirectedEnforcer,
)
from repro.core.engine import Diode, DiodeConfig
from repro.core.fieldmap import FieldMapper
from repro.core.inputs import InputGenerator
from repro.core.report import SiteClassification, classification_from_enforcement
from repro.core.sites import identify_target_sites
from repro.core.target import extract_target_observations
from repro.formats.fields import Endianness, FieldKind, FieldSpec
from repro.formats.spec import FormatSpec
from repro.lang.program import Program
from repro.smt.solver import PortfolioSolver

# A miniature application with one site of each classification:
#  - guarded.c@1   : exposed only after enforcing the two sanity checks
#  - open.c@2      : exposed immediately (no checks)
#  - capped.c@3    : protected by the sanity checks (cannot overflow below caps)
#  - narrow.c@4    : target constraint unsatisfiable (16-bit quantity * 4)
MINI_SOURCE = """
proc be32(o) {
  v = (input(o) << 24) | (input(o + 1) << 16) | (input(o + 2) << 8) | input(o + 3);
  return v;
}

proc main() {
  count = be32(4);
  unit  = be32(8);
  small = (input(12) << 8) | input(13);

  open_buf = alloc(count * unit) @ "open.c@2";

  if (count > 100000) { halt "count too large"; }
  if (unit > 100000) { halt "unit too large"; }

  guarded_buf = alloc(count * unit * 64) @ "guarded.c@1";
  capped_buf  = alloc(count * 8 + unit) @ "capped.c@3";
  narrow_buf  = alloc(small * 4) @ "narrow.c@4";

  guarded_buf[count * unit * 64 - 1] = 1;
  probe = guarded_buf[(count - 1) * unit * 64];
}
"""

MINI_SPEC = FormatSpec(
    "mini",
    [
        FieldSpec("/magic", 0, 4, FieldKind.MAGIC, mutable=False),
        FieldSpec("/count", 4, 4, FieldKind.UINT, Endianness.BIG),
        FieldSpec("/unit", 8, 4, FieldKind.UINT, Endianness.BIG),
        FieldSpec("/small", 12, 2, FieldKind.UINT, Endianness.BIG),
    ],
)


def _mini_seed(count=20, unit=16, small=9) -> bytes:
    return (
        b"MINI"
        + count.to_bytes(4, "big")
        + unit.to_bytes(4, "big")
        + small.to_bytes(2, "big")
        + bytes(2)
    )


@pytest.fixture(scope="module")
def mini_app() -> Application:
    program = Program.from_source(MINI_SOURCE, name="mini")
    return Application(
        name="Mini",
        program=program,
        format_spec=MINI_SPEC,
        seed_input=_mini_seed(),
        expectations=[
            SiteExpectation("open.c@2", "exposed", enforced_branches=0),
            SiteExpectation("guarded.c@1", "exposed", enforced_branches=2),
            SiteExpectation("capped.c@3", "prevented"),
            SiteExpectation("narrow.c@4", "unsatisfiable"),
        ],
    )


def _run_site(app: Application, tag: str, config: EnforcementConfig | None = None):
    sites = identify_target_sites(app.program, app.seed_input)
    site = next(s for s in sites if s.site_tag == tag)
    mapper = FieldMapper(app.format_spec)
    observation = extract_target_observations(
        app.program, app.seed_input, site, field_mapper=mapper
    )[0]
    enforcer = GoalDirectedEnforcer(
        PortfolioSolver(),
        InputGenerator(app.seed_input, app.format_spec),
        ErrorDetector(app.program, app.seed_input),
        config,
    )
    return enforcer.run(observation)


class TestEnforcementOutcomes:
    def test_open_site_triggers_without_enforcement(self, mini_app):
        result = _run_site(mini_app, "open.c@2")
        assert result.outcome is EnforcementOutcome.OVERFLOW_TRIGGERED
        assert result.enforced_count == 0
        assert result.triggering_input is not None

    def test_guarded_site_requires_enforcement(self, mini_app):
        result = _run_site(mini_app, "guarded.c@1")
        assert result.outcome is EnforcementOutcome.OVERFLOW_TRIGGERED
        assert 1 <= result.enforced_count <= 3
        assert result.relevant_branch_count >= result.enforced_count
        # Every enforced branch is one of the two sanity checks.
        assert result.evaluation is not None and result.evaluation.triggers_overflow

    def test_capped_site_is_prevented(self, mini_app):
        result = _run_site(mini_app, "capped.c@3")
        assert result.outcome in (
            EnforcementOutcome.CONSTRAINTS_UNSATISFIABLE,
            EnforcementOutcome.SEED_PATH_EXHAUSTED,
        )
        assert not result.found_overflow

    def test_narrow_site_target_unsatisfiable(self, mini_app):
        result = _run_site(mini_app, "narrow.c@4")
        assert result.outcome is EnforcementOutcome.TARGET_UNSATISFIABLE

    def test_triggering_input_is_well_formed(self, mini_app):
        result = _run_site(mini_app, "guarded.c@1")
        data = result.triggering_input
        assert data[:4] == b"MINI"
        assert len(data) == len(mini_app.seed_input)

    def test_steps_are_recorded(self, mini_app):
        result = _run_site(mini_app, "guarded.c@1")
        assert result.steps
        assert result.steps[0].iteration == 0
        assert result.steps[-1].triggered

    def test_classification_mapping(self, mini_app):
        exposed = _run_site(mini_app, "open.c@2")
        unsat = _run_site(mini_app, "narrow.c@4")
        prevented = _run_site(mini_app, "capped.c@3")
        assert classification_from_enforcement(exposed) is SiteClassification.OVERFLOW_EXPOSED
        assert (
            classification_from_enforcement(unsat)
            is SiteClassification.TARGET_UNSATISFIABLE
        )
        assert (
            classification_from_enforcement(prevented)
            is SiteClassification.SANITY_PREVENTED
        )

    def test_iteration_limit_respected(self, mini_app):
        config = EnforcementConfig(max_iterations=0)
        result = _run_site(mini_app, "guarded.c@1", config)
        assert result.outcome in (
            EnforcementOutcome.ITERATION_LIMIT,
            EnforcementOutcome.OVERFLOW_TRIGGERED,  # solved before any enforcement
        )

    def test_ablation_reverse_order_still_terminates(self, mini_app):
        config = EnforcementConfig(flip_selection="last")
        result = _run_site(mini_app, "guarded.c@1", config)
        assert result.outcome in (
            EnforcementOutcome.OVERFLOW_TRIGGERED,
            EnforcementOutcome.CONSTRAINTS_UNSATISFIABLE,
            EnforcementOutcome.ITERATION_LIMIT,
        )

    def test_ablation_without_relevance_filter(self, mini_app):
        config = EnforcementConfig(filter_relevant=False)
        result = _run_site(mini_app, "guarded.c@1", config)
        assert result.relevant_branch_count >= 2

    def test_unknown_flip_selection_rejected(self, mini_app):
        config = EnforcementConfig(flip_selection="sideways")
        with pytest.raises(ValueError):
            _run_site(mini_app, "guarded.c@1", config)


class TestDiodeEngine:
    def test_analyze_classifies_all_sites(self, mini_app):
        result = Diode().analyze(mini_app)
        assert result.total_target_sites == 4
        assert result.exposed_count == 2
        assert result.unsatisfiable_count == 1
        assert result.sanity_prevented_count == 1

    def test_bug_reports_only_for_exposed_sites(self, mini_app):
        result = Diode().analyze(mini_app)
        reports = result.bug_reports()
        assert {r.target for r in reports} == {"open.c@2", "guarded.c@1"}
        for report in reports:
            assert report.enforced_ratio().count("/") == 1
            assert report.triggering_input is not None

    def test_table1_row_format(self, mini_app):
        row = Diode().analyze(mini_app).table1_row()
        assert row["total_target_sites"] == 4
        assert sum(v for k, v in row.items() if k != "total_target_sites") == 4

    def test_engine_config_is_used(self, mini_app):
        config = DiodeConfig()
        config.enforcement.max_iterations = 1
        result = Diode(config).analyze(mini_app)
        assert result.total_target_sites == 4

    def test_known_cve_mapping(self, mini_app):
        mini_app.expectations[0] = SiteExpectation(
            "open.c@2", "exposed", enforced_branches=0, cve="CVE-0000-0001"
        )
        result = Diode().analyze(mini_app)
        report = next(r for r in result.bug_reports() if r.target == "open.c@2")
        assert report.cve == "CVE-0000-0001"


class TestIncrementalSessions:
    """Session-driven enforcement (the default) against the fresh-query
    reference path: identical outcomes, enforced branches and steps."""

    def _run_both(self, app, tag):
        from repro.smt.solver import SolverConfig

        fresh_config = SolverConfig(
            enable_sessions=False, enable_decomposition=False
        )
        incremental = _run_site(app, tag)
        sites = identify_target_sites(app.program, app.seed_input)
        site = next(s for s in sites if s.site_tag == tag)
        mapper = FieldMapper(app.format_spec)
        observation = extract_target_observations(
            app.program, app.seed_input, site, field_mapper=mapper
        )[0]
        enforcer = GoalDirectedEnforcer(
            PortfolioSolver(fresh_config),
            InputGenerator(app.seed_input, app.format_spec),
            ErrorDetector(app.program, app.seed_input),
        )
        return incremental, enforcer.run(observation)

    @pytest.mark.parametrize(
        "tag", ["open.c@2", "guarded.c@1", "capped.c@3", "narrow.c@4"]
    )
    def test_session_path_matches_fresh_path(self, mini_app, tag):
        incremental, fresh = self._run_both(mini_app, tag)
        assert incremental.outcome is fresh.outcome
        assert incremental.enforced_count == fresh.enforced_count
        assert len(incremental.steps) == len(fresh.steps)
        assert [s.solver_status for s in incremental.steps] == [
            s.solver_status for s in fresh.steps
        ]

    def test_default_config_enables_sessions(self):
        from repro.smt.solver import SolverConfig

        config = SolverConfig()
        assert config.enable_sessions
        assert config.enable_decomposition
