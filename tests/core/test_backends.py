"""Tests for the pluggable execution-backend subsystem (:mod:`repro.sched`).

Two contracts:

1. **Parity** — every backend (serial, thread, process) produces exactly
   the classifications of the plain serial ``Diode.analyze`` path; the
   process backend's pickle boundary and per-worker caches must be
   invisible in the results.
2. **Failure semantics** — the first failing unit cancels its pending
   siblings and surfaces as a :class:`UnitAnalysisError` carrying the
   ⟨application, site⟩ identity with the original exception chained.
"""

from __future__ import annotations

import pytest

from repro.apps import get_application
from repro.core import Diode
from repro.core.campaign import CampaignConfig, run_campaign
from repro.sched import (
    BACKENDS,
    CampaignUnit,
    UnitAnalysisError,
    UnitRunRequest,
    available_backends,
    build_application_context,
    get_backend,
)
from repro.sched.serial import SerialBackend
from repro.sched.thread import ThreadBackend

#: Registry subset used by the parity tests — big enough to exercise both
#: a multi-site application and cross-application scheduling, small enough
#: to keep the process-pool tests cheap on single-CPU hosts.
SUBSET = ["vlc", "cwebp"]


@pytest.fixture(scope="module")
def serial_diode_reference():
    """Site classifications from the plain serial Diode path, for SUBSET."""
    engine = Diode()
    reference = {}
    for name in SUBSET:
        result = engine.analyze(get_application(name))
        reference[result.application] = {
            site.site.name: site.classification.value
            for site in result.site_results
        }
    return reference


class TestBackendRegistry:
    def test_all_three_backends_are_registered(self):
        assert set(available_backends()) == {"serial", "thread", "process"}

    def test_get_backend_returns_named_instances(self):
        for name in available_backends():
            assert get_backend(name).name == name

    def test_unknown_backend_is_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("gpu")
        with pytest.raises(ValueError, match="unknown backend"):
            CampaignConfig(backend="gpu").resolved_backend()

    def test_single_worker_thread_campaign_degrades_to_serial(self):
        assert CampaignConfig(jobs=1, backend="thread").resolved_backend() == "serial"
        assert CampaignConfig(jobs=4, backend="thread").resolved_backend() == "thread"
        # An explicit process request is honoured even at one worker.
        assert CampaignConfig(jobs=1, backend="process").resolved_backend() == "process"


class TestBackendParity:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_backend_matches_serial_diode_path(
        self, backend, serial_diode_reference
    ):
        result = run_campaign(
            CampaignConfig(jobs=2, backend=backend, applications=SUBSET)
        )
        assert result.backend == backend
        assert result.classifications() == serial_diode_reference

    def test_process_backend_without_cache(self, serial_diode_reference):
        result = run_campaign(
            CampaignConfig(
                jobs=2, backend="process", use_cache=False, applications=SUBSET
            )
        )
        assert result.cache_stats is None
        assert result.classifications() == serial_diode_reference

    def test_process_backend_aggregates_worker_cache_stats(self):
        result = run_campaign(
            CampaignConfig(jobs=2, backend="process", applications=SUBSET)
        )
        stats = result.cache_stats
        assert stats is not None
        # Workers did the lookups; the parent must still see them.
        assert stats.lookups > 0
        # Worker verdicts were merged back into the parent cache.
        assert stats.merged > 0

    def test_process_backend_bug_reports_survive_the_pickle_boundary(
        self, serial_diode_reference
    ):
        process = run_campaign(
            CampaignConfig(jobs=2, backend="process", applications=SUBSET)
        )
        serial = run_campaign(
            CampaignConfig(jobs=1, backend="serial", applications=SUBSET)
        )
        key = lambda r: (r.application, r.target, r.cve, r.error_type)
        assert sorted(map(key, process.bug_reports())) == sorted(
            map(key, serial.bug_reports())
        )


def _make_request(monkeypatch_analyze=None, jobs=1):
    """A small real request over vlc's sites, optionally with a failing unit."""
    application = get_application("vlc")
    context = build_application_context(0, application)
    units = [
        CampaignUnit(
            app_index=0,
            site_index=index,
            application_name=application.name,
            site_name=site.name,
        )
        for index, site in enumerate(context.sites)
    ]
    return UnitRunRequest(
        contexts=[context],
        units=units,
        cache=None,
        jobs=jobs,
        diode=None,  # replaced by stubs below; real runs build a DiodeConfig
        application_names=["vlc"],
    )


class TestFailureSemantics:
    def test_serial_backend_wraps_failure_with_unit_identity(self, monkeypatch):
        request = _make_request()
        executed = []

        def exploding(unit, backend=""):
            executed.append(unit.site_name)
            if len(executed) == 2:
                raise RuntimeError("solver meltdown")
            return object()

        monkeypatch.setattr(request, "run_unit", exploding)
        with pytest.raises(UnitAnalysisError) as info:
            SerialBackend().run_units(request)
        error = info.value
        assert error.application_name == "VLC 0.8.6h"
        assert error.site_name == request.units[1].site_name
        assert isinstance(error.__cause__, RuntimeError)
        assert "solver meltdown" in repr(error.__cause__)
        # Serial semantics: units after the failure never start.
        assert executed == [request.units[0].site_name, request.units[1].site_name]

    def test_thread_backend_cancels_pending_units_on_failure(self, monkeypatch):
        # One worker makes the schedule deterministic: unit 0 raises while
        # units 1..n are still queued, so they must be cancelled, not run.
        request = _make_request(jobs=1)
        executed = []

        def exploding(unit, backend=""):
            executed.append(unit.site_name)
            raise RuntimeError("first unit fails")

        monkeypatch.setattr(request, "run_unit", exploding)
        with pytest.raises(UnitAnalysisError) as info:
            ThreadBackend().run_units(request)
        assert info.value.site_name == request.units[0].site_name
        assert info.value.application_name == request.units[0].application_name
        assert isinstance(info.value.__cause__, RuntimeError)
        assert executed == [request.units[0].site_name]

    def test_thread_backend_reports_earliest_submitted_failure(self, monkeypatch):
        request = _make_request(jobs=2)

        def exploding(unit):
            raise ValueError(f"boom {unit.site_index}")

        monkeypatch.setattr(request, "run_unit", exploding)
        with pytest.raises(UnitAnalysisError) as info:
            ThreadBackend().run_units(request)
        # Every unit fails; the surfaced one must be the earliest submitted
        # among the completed, with its identity in the message.
        assert info.value.site_name in {u.site_name for u in request.units}
        assert info.value.application_name == "VLC 0.8.6h"
        assert info.value.site_name in str(info.value)

    def test_process_backend_surfaces_worker_failures(self):
        # A real failure on the far side of the pickle boundary: an unknown
        # registry name makes every worker's context rebuild explode.
        request = _make_request(jobs=2)
        request.application_names = ["no-such-app"]
        from repro.core.engine import DiodeConfig
        from repro.sched.process import ProcessBackend

        request.diode = DiodeConfig()
        with pytest.raises(UnitAnalysisError) as info:
            ProcessBackend().run_units(request)
        assert info.value.application_name == "VLC 0.8.6h"
        assert info.value.__cause__ is not None


class TestCampaignBackendSurface:
    def test_campaign_result_records_resolved_backend(self):
        result = run_campaign(
            CampaignConfig(jobs=1, backend="thread", applications=["vlc"])
        )
        assert result.backend == "serial"

    def test_backends_registry_is_consistent(self):
        for name, backend in BACKENDS.items():
            assert backend.name == name
