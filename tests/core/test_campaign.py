"""Tests for the parallel analysis campaign engine.

The contract under test: a campaign is just a faster way to run the
pipeline — parallel and serial modes, cached and uncached, all produce
exactly the classifications the plain serial ``Diode.analyze`` path
produces, for every registered application and any worker count.
"""

from __future__ import annotations

import pytest

from repro.apps import all_applications, application_names
from repro.core import Diode
from repro.core.campaign import (
    CampaignConfig,
    CampaignEngine,
    CampaignResult,
    run_campaign,
)
from repro.core.report import SiteClassification


@pytest.fixture(scope="module")
def serial_reference():
    """site classifications from the plain serial Diode path."""
    engine = Diode()
    reference = {}
    for application in all_applications():
        result = engine.analyze(application)
        reference[result.application] = {
            site.site.name: site.classification.value
            for site in result.site_results
        }
    return reference


@pytest.fixture(scope="module")
def cached_parallel_result():
    return run_campaign(CampaignConfig(jobs=4, use_cache=True))


class TestEquivalenceWithSerialPath:
    def test_serial_uncached_campaign_matches_diode(self, serial_reference):
        result = run_campaign(CampaignConfig(jobs=1, use_cache=False))
        assert result.classifications() == serial_reference

    def test_serial_cached_campaign_matches_diode(self, serial_reference):
        result = run_campaign(CampaignConfig(jobs=1, use_cache=True))
        assert result.classifications() == serial_reference

    def test_parallel_cached_campaign_matches_diode(
        self, serial_reference, cached_parallel_result
    ):
        assert cached_parallel_result.classifications() == serial_reference

    def test_every_registered_application_is_covered(self, cached_parallel_result):
        analyzed = {
            result.application
            for result in cached_parallel_result.application_results
        }
        expected = {app.name for app in all_applications()}
        assert analyzed == expected


class TestDeterminismAcrossWorkerCounts:
    @pytest.mark.parametrize("jobs", [1, 2, 4, 8])
    def test_worker_count_does_not_change_classifications(
        self, jobs, cached_parallel_result
    ):
        result = run_campaign(CampaignConfig(jobs=jobs, use_cache=True))
        assert (
            result.classifications() == cached_parallel_result.classifications()
        )

    def test_worker_count_does_not_change_query_count(
        self, cached_parallel_result
    ):
        """The number of solver queries is a property of the (deterministic)
        enforcement paths, not of scheduling.  Hit/miss *splits* may differ
        slightly across worker counts — two workers can race on the same
        canonical key and both solve it (idempotent stores) — but the total
        lookup count and the presence of reuse are invariant."""
        result = run_campaign(CampaignConfig(jobs=2, use_cache=True))
        reference = cached_parallel_result.cache_stats
        assert result.cache_stats.lookups == reference.lookups
        assert result.cache_stats.hits > 0

    def test_bug_reports_are_stable(self, cached_parallel_result):
        result = run_campaign(CampaignConfig(jobs=3, use_cache=True))
        key = lambda r: (r.application, r.target, r.cve, r.error_type)
        assert sorted(map(key, result.bug_reports())) == sorted(
            map(key, cached_parallel_result.bug_reports())
        )


class TestCampaignResult:
    def test_table1_totals_add_up(self, cached_parallel_result):
        totals = cached_parallel_result.table1_totals()
        assert totals["total_target_sites"] == cached_parallel_result.unit_count
        assert totals["total_target_sites"] == sum(
            row["total_target_sites"]
            for row in cached_parallel_result.table1_rows()
        )
        accounted = (
            totals["diode_exposes_overflow"]
            + totals["target_constraint_unsatisfiable"]
            + totals["sanity_checks_prevent_overflow"]
        )
        assert accounted <= totals["total_target_sites"]

    def test_cache_is_exercised(self, cached_parallel_result):
        stats = cached_parallel_result.cache_stats
        assert stats is not None
        assert stats.hits > 0
        assert stats.hit_rate() > 0.0

    def test_uncached_run_reports_no_stats(self):
        result = run_campaign(
            CampaignConfig(jobs=1, use_cache=False, applications=["vlc"])
        )
        assert result.cache_stats is None
        assert result.cache_enabled is False

    def test_site_results_preserve_site_order(self, cached_parallel_result):
        from repro.core.sites import identify_target_sites

        for application in all_applications():
            sites = identify_target_sites(
                application.program, application.seed_input
            )
            campaign_app = next(
                result
                for result in cached_parallel_result.application_results
                if result.application == application.name
            )
            assert [s.site.name for s in campaign_app.site_results] == [
                site.name for site in sites
            ]

    def test_every_site_is_classified(self, cached_parallel_result):
        for app_result in cached_parallel_result.application_results:
            for site_result in app_result.site_results:
                assert isinstance(
                    site_result.classification, SiteClassification
                )


class TestCampaignConfig:
    def test_application_subset(self):
        result = run_campaign(
            CampaignConfig(jobs=1, applications=["vlc", "cwebp"])
        )
        assert [r.application for r in result.application_results] == [
            "VLC 0.8.6h",
            "CWebP 0.3.1",
        ]

    def test_jobs_are_clamped_to_at_least_one(self):
        assert CampaignConfig(jobs=0).resolved_jobs() == 1
        assert CampaignConfig(jobs=-3).resolved_jobs() == 1

    def test_default_jobs_follow_cpu_count(self):
        assert CampaignConfig().resolved_jobs() >= 1

    def test_registry_names_are_valid(self):
        # The config surface accepts exactly the registry's short names.
        for name in application_names():
            result = run_campaign(
                CampaignConfig(jobs=1, use_cache=False, applications=[name])
            )
            assert isinstance(result, CampaignResult)
            assert len(result.application_results) == 1


class TestIncrementalParity:
    """PR 3's hard invariant: the incremental solving stack (sessions,
    decomposition, component cache) is classification-transparent on the
    full registry."""

    def test_fresh_query_campaign_matches_the_incremental_default(
        self, serial_reference
    ):
        config = CampaignConfig(jobs=1, backend="serial")
        config.diode.solver.enable_sessions = False
        config.diode.solver.enable_decomposition = False
        fresh = run_campaign(config)
        incremental = run_campaign(CampaignConfig(jobs=1, backend="serial"))
        assert incremental.classifications() == fresh.classifications()
        assert incremental.classifications() == serial_reference

    def test_component_cache_counters_surface_in_campaign_stats(self):
        result = run_campaign(CampaignConfig(jobs=1, backend="serial"))
        stats = result.cache_stats.as_dict()
        assert "component_hits" in stats
        assert "component_hit_rate" in stats
        assert stats["component_misses"] + stats["component_hits"] > 0
