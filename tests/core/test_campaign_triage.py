"""Tests for the campaign's witness-triage integration.

The contract: every discovered overflow is re-validated, minimized and
deduplicated; a persistent corpus accumulates witnesses across runs,
schedules and backends; and ``skip_known`` replays corpus witnesses
without changing any classification.
"""

from __future__ import annotations

import pytest

from repro.core.campaign import CampaignConfig, CampaignEngine, run_campaign
from repro.triage.corpus import CorpusStore

APPS = ["dillo", "vlc"]


@pytest.fixture(scope="module")
def cold_result(tmp_path_factory):
    corpus_dir = str(tmp_path_factory.mktemp("corpus"))
    result = run_campaign(
        CampaignConfig(jobs=1, applications=APPS, corpus_dir=corpus_dir)
    )
    return corpus_dir, result


class TestTriagePass:
    def test_stats_cover_every_bug_report(self, cold_result):
        _, result = cold_result
        stats = result.triage_stats
        assert stats is not None
        assert stats.raw_reports == len(result.bug_reports())
        assert stats.validated == stats.raw_reports
        assert stats.validation_failures == 0

    def test_one_record_per_exposed_site(self, cold_result):
        _, result = cold_result
        exposed = result.table1_totals()["diode_exposes_overflow"]
        assert result.triage_stats.distinct == exposed
        assert len(result.witness_records) == exposed

    def test_witnesses_are_minimized(self, cold_result):
        _, result = cold_result
        assert all(record.minimized for record in result.witness_records)
        assert result.triage_stats.fields_after <= result.triage_stats.fields_before

    def test_triage_can_be_disabled(self):
        result = run_campaign(
            CampaignConfig(jobs=1, applications=["dillo"], triage=False)
        )
        assert result.triage_stats is None
        assert result.witness_records == []

    def test_no_minimize_keeps_fields(self):
        result = run_campaign(
            CampaignConfig(
                jobs=1, applications=["dillo"], minimize_witnesses=False
            )
        )
        assert result.triage_stats.minimized == 0
        assert result.triage_stats.distinct > 0


class TestCorpusPersistence:
    def test_cold_run_populates_the_corpus(self, cold_result):
        corpus_dir, result = cold_result
        assert result.corpus_loaded == 0
        assert result.corpus_saved == result.triage_stats.distinct
        assert len(CorpusStore(corpus_dir).load()) == result.corpus_saved

    def test_rerun_warm_starts_and_dedupes(self, cold_result):
        corpus_dir, cold = cold_result
        warm = run_campaign(
            CampaignConfig(jobs=1, applications=APPS, corpus_dir=corpus_dir)
        )
        assert warm.corpus_loaded == cold.corpus_saved
        # Rediscoveries collapse onto the stored signatures: same total.
        assert warm.corpus_saved == cold.corpus_saved
        records = CorpusStore(corpus_dir).load()
        assert all(record.times_seen >= 2 for record in records.values())

    def test_schedules_and_backends_converge(self, cold_result, tmp_path):
        """Different schedules into one fresh corpus: one deduped record set."""
        corpus_dir = str(tmp_path / "multi")
        serial = run_campaign(
            CampaignConfig(
                jobs=1, applications=APPS, backend="serial", corpus_dir=corpus_dir
            )
        )
        threaded = run_campaign(
            CampaignConfig(
                jobs=4, applications=APPS, backend="thread", corpus_dir=corpus_dir
            )
        )
        records = CorpusStore(corpus_dir).load()
        assert serial.triage_stats.distinct == threaded.triage_stats.distinct
        assert len(records) == serial.triage_stats.distinct

    def test_no_save_corpus(self, tmp_path):
        corpus_dir = str(tmp_path / "nosave")
        result = run_campaign(
            CampaignConfig(
                jobs=1,
                applications=["dillo"],
                corpus_dir=corpus_dir,
                save_corpus=False,
            )
        )
        assert result.triage_stats.distinct > 0
        assert CorpusStore(corpus_dir).load() == {}


class TestProcessBackendWitnessPayloads:
    def test_process_backend_ships_worker_triaged_witnesses(self, tmp_path):
        corpus_dir = str(tmp_path / "proc")
        result = run_campaign(
            CampaignConfig(
                jobs=2,
                applications=["dillo"],
                backend="process",
                corpus_dir=corpus_dir,
            )
        )
        assert result.triage_stats.distinct == 3
        assert all(record.minimized for record in result.witness_records)
        assert len(CorpusStore(corpus_dir).load()) == 3

    def test_process_backend_matches_thread_backend_records(self, tmp_path):
        process = run_campaign(
            CampaignConfig(jobs=2, applications=["dillo"], backend="process")
        )
        thread = run_campaign(
            CampaignConfig(jobs=2, applications=["dillo"], backend="thread")
        )
        assert {r.signature for r in process.witness_records} == {
            r.signature for r in thread.witness_records
        }


class TestSkipKnown:
    def test_skip_known_preserves_classifications(self, cold_result):
        corpus_dir, cold = cold_result
        warm = run_campaign(
            CampaignConfig(
                jobs=1, applications=APPS, corpus_dir=corpus_dir, skip_known=True
            )
        )
        assert warm.classifications() == cold.classifications()
        assert warm.skipped_known == cold.triage_stats.distinct
        assert warm.unit_count == (
            sum(r.total_target_sites for r in cold.application_results)
            - warm.skipped_known
        )

    def test_skipped_sites_keep_bug_reports(self, cold_result):
        corpus_dir, cold = cold_result
        warm = run_campaign(
            CampaignConfig(
                jobs=1, applications=APPS, corpus_dir=corpus_dir, skip_known=True
            )
        )
        assert {(r.application, r.target) for r in warm.bug_reports()} == {
            (r.application, r.target) for r in cold.bug_reports()
        }
        for report in warm.bug_reports():
            assert report.triggering_input is not None

    def test_skip_known_adopts_stored_records_without_re_minimizing(
        self, cold_result
    ):
        """Skipped sites reuse the corpus record; triage spends no ddmin
        budget re-deriving what the corpus already holds."""
        corpus_dir, cold = cold_result
        warm = run_campaign(
            CampaignConfig(
                jobs=1, applications=APPS, corpus_dir=corpus_dir, skip_known=True
            )
        )
        # Adopted records keep the discovery-time shape: same signatures,
        # same original-field accounting as the cold run that minted them.
        assert {r.signature for r in warm.witness_records} == {
            r.signature for r in cold.witness_records
        }
        assert (
            warm.triage_stats.fields_before == cold.triage_stats.fields_before
        )
        assert warm.triage_stats.fields_after == cold.triage_stats.fields_after
        assert warm.triage_stats.minimized == cold.triage_stats.minimized

    def test_stale_corpus_falls_back_to_full_analysis(self, tmp_path, cold_result):
        """A witness that no longer replays must not skip its site."""
        _, cold = cold_result
        corpus_dir = str(tmp_path / "stale")
        store = CorpusStore(corpus_dir)
        records = {}
        for record in cold.witness_records:
            stale = type(record).from_wire(record.to_wire())
            stale.field_values = {path: 1 for path in stale.field_values}
            stale.input_hex = None
            records[stale.signature] = stale
        store.save(records)
        warm = run_campaign(
            CampaignConfig(
                jobs=1, applications=APPS, corpus_dir=corpus_dir, skip_known=True
            )
        )
        assert warm.skipped_known == 0
        assert warm.classifications() == cold.classifications()

    def test_skip_known_requires_corpus_dir(self):
        with pytest.raises(ValueError):
            CampaignEngine(
                CampaignConfig(jobs=1, applications=["dillo"], skip_known=True)
            ).run()

    def test_corpus_dir_requires_triage(self, tmp_path):
        with pytest.raises(ValueError):
            CampaignEngine(
                CampaignConfig(
                    jobs=1,
                    applications=["dillo"],
                    corpus_dir=str(tmp_path),
                    triage=False,
                )
            ).run()
