"""Unit tests for DIODE's pipeline components on small synthetic programs."""

import pytest

from repro.core.branches import (
    BranchConstraint,
    compress_branches,
    extract_branch_constraints,
    first_unsatisfied,
    relevant_branches,
)
from repro.core.detection import ErrorDetector
from repro.core.fieldmap import FieldMapper
from repro.core.inputs import InputGenerator
from repro.core.overflow import (
    OverflowSpec,
    ideal_size_exceeds_width,
    overflow_conditions,
    overflow_constraint,
)
from repro.core.sites import identify_target_sites
from repro.core.target import extract_target_observations
from repro.exec.concolic import ConcolicInterpreter
from repro.formats.fields import Endianness, FieldKind, FieldSpec
from repro.formats.spec import FormatSpec
from repro.lang.program import Program
from repro.smt import builder as b
from repro.smt.evalmodel import Model, evaluate, satisfies
from repro.smt.solver import PortfolioSolver
from repro.smt.terms import TermKind


def _program(body: str) -> Program:
    return Program.from_source("proc main() { " + body + " }")


SIMPLE_SPEC = FormatSpec(
    "simple",
    [
        FieldSpec("/magic", 0, 2, FieldKind.MAGIC, mutable=False),
        FieldSpec("/w", 2, 2, FieldKind.UINT, Endianness.BIG),
        FieldSpec("/h", 4, 2, FieldKind.UINT, Endianness.LITTLE),
        FieldSpec("/flags", 6, 1, FieldKind.UINT),
    ],
)


class TestOverflowConstraint:
    def test_multiplication_condition(self):
        x = b.bv_var("x", 32)
        y = b.bv_var("y", 32)
        constraint = overflow_constraint(b.mul(x, y))
        assert satisfies(constraint, {"x": 1 << 20, "y": 1 << 20})
        assert not satisfies(constraint, {"x": 10, "y": 10})

    def test_addition_condition(self):
        x = b.bv_var("x", 32)
        constraint = overflow_constraint(b.add(x, b.bv_const(2, 32)))
        assert satisfies(constraint, {"x": 0xFFFFFFFE})
        assert satisfies(constraint, {"x": 0xFFFFFFFF})
        assert not satisfies(constraint, {"x": 0xFFFFFFFD})

    def test_subtraction_borrow_condition(self):
        x = b.bv_var("x", 32)
        constraint = overflow_constraint(b.sub(x, b.bv_const(10, 32)))
        assert satisfies(constraint, {"x": 3})
        assert not satisfies(constraint, {"x": 10})

    def test_subtraction_can_be_disabled(self):
        x = b.bv_var("x", 32)
        constraint = overflow_constraint(
            b.sub(x, b.bv_const(10, 32)), OverflowSpec(include_sub=False)
        )
        assert constraint is b.bool_const(False)

    def test_shift_condition(self):
        x = b.bv_var("x", 32)
        constraint = overflow_constraint(b.shl(x, b.bv_const(8, 32)))
        assert satisfies(constraint, {"x": 1 << 25})
        assert not satisfies(constraint, {"x": 1 << 10})

    def test_subexpression_overflow_counts(self):
        """The paper's Section 4.3 example: only the inner product can wrap."""
        w = b.bv_var("w", 32)
        h = b.bv_var("h", 32)
        bpp = b.bv_const(8, 32)
        expression = b.udiv(b.mul(b.mul(w, h), b.bv_const(4, 32)), bpp)
        constraint = overflow_constraint(expression)
        model = {"w": 1 << 17, "h": 1 << 17}
        assert satisfies(constraint, model)

    def test_expression_without_arithmetic_has_no_conditions(self):
        x = b.bv_var("x", 32)
        assert overflow_constraint(b.bvand(x, 0xFF)) is b.bool_const(False)

    def test_conditions_enumerated_per_operation(self):
        x = b.bv_var("x", 32)
        y = b.bv_var("y", 32)
        expression = b.add(b.mul(x, y), b.bv_const(16, 32))
        kinds = {c.operation.kind for c in overflow_conditions(expression)}
        assert kinds == {TermKind.ADD, TermKind.MUL}

    def test_ideal_size_exceeds_width(self):
        x = b.bv_var("x", 32)
        y = b.bv_var("y", 32)
        constraint = ideal_size_exceeds_width(b.mul(x, y))
        assert satisfies(constraint, {"x": 1 << 20, "y": 1 << 20})

    def test_boolean_expression_rejected(self):
        with pytest.raises(ValueError):
            overflow_constraint(b.bool_var("p"))


class TestBranchHelpers:
    def _observations(self):
        program = _program(
            """
            v = input(0);
            i = 0;
            while (i < v) { i = i + 1; }
            if (v < 50) { x = 1; }
            if (input(1) > 3) { y = 1; }
            buf = alloc(v * 16777216);
            """
        )
        report = ConcolicInterpreter(program).run_concolic(bytes([3, 9]))
        return report

    def test_extract_keeps_only_symbolic_branches(self):
        report = self._observations()
        constraints = extract_branch_constraints(report.branches)
        assert len(constraints) == len(report.symbolic_branches())

    def test_compress_coalesces_loop_iterations(self):
        report = self._observations()
        constraints = extract_branch_constraints(report.branches)
        compressed = compress_branches(constraints)
        labels = [c.label for c in compressed]
        assert len(labels) == len(set(labels))
        loop_constraint = max(compressed, key=lambda c: c.occurrences)
        assert loop_constraint.occurrences == 4  # 3 taken + 1 exit
        # The compressed loop condition pins v to the seed's trip count.
        assert loop_constraint.satisfied_by(Model({"inp[0]": 3, "inp[1]": 9}))
        assert not loop_constraint.satisfied_by(Model({"inp[0]": 10, "inp[1]": 9}))

    def test_compress_preserves_first_occurrence_order(self):
        report = self._observations()
        compressed = compress_branches(extract_branch_constraints(report.branches))
        indexes = [c.first_sequence_index for c in compressed]
        assert indexes == sorted(indexes)

    def test_relevant_filters_by_shared_variables(self):
        report = self._observations()
        allocation = report.allocations[0]
        beta = overflow_constraint(allocation.size_expression)
        compressed = compress_branches(extract_branch_constraints(report.branches))
        relevant = relevant_branches(compressed, beta)
        # The branch over input(1) shares no variable with the target
        # expression over input(0) and must be discarded.
        assert len(relevant) == len(compressed) - 1

    def test_first_unsatisfied_picks_execution_order(self):
        report = self._observations()
        compressed = compress_branches(extract_branch_constraints(report.branches))
        violating = Model({"inp[0]": 200, "inp[1]": 9})
        flipped = first_unsatisfied(compressed, violating)
        assert flipped is compressed[0]

    def test_first_unsatisfied_none_when_all_hold(self):
        report = self._observations()
        compressed = compress_branches(extract_branch_constraints(report.branches))
        assert first_unsatisfied(compressed, Model({"inp[0]": 3, "inp[1]": 9})) is None


class TestFieldMapper:
    def test_field_map_big_and_little_endian(self):
        mapper = FieldMapper(SIMPLE_SPEC)
        mapping = mapper.field_map()
        assert mapping[2] == ("/w", 16, 8)   # big endian: first byte is MSB
        assert mapping[3] == ("/w", 16, 0)
        assert mapping[4] == ("/h", 16, 0)   # little endian: first byte is LSB
        assert mapping[5] == ("/h", 16, 8)
        assert mapping[6] == ("/flags", 8, 0)
        assert 0 not in mapping  # magic bytes are not mapped

    def test_model_to_byte_values_field_and_raw(self):
        mapper = FieldMapper(SIMPLE_SPEC)
        values = mapper.model_to_byte_values(Model({"/w": 0x0102, "inp[6]": 0x7F}))
        assert values[2] == 0x01 and values[3] == 0x02
        assert values[6] == 0x7F

    def test_assignment_for_input_covers_fields_and_bytes(self):
        mapper = FieldMapper(SIMPLE_SPEC)
        data = bytes([0xAA, 0xBB, 0x01, 0x02, 0x03, 0x04, 0x05])
        assignment = mapper.assignment_for_input(data, range(len(data)))
        assert assignment["/w"] == 0x0102
        assert assignment["/h"] == 0x0403
        assert assignment["inp[6]"] == 0x05

    def test_describe_relevant_bytes(self):
        mapper = FieldMapper(SIMPLE_SPEC)
        grouped = mapper.describe_relevant_bytes([2, 3, 6, 40])
        assert grouped["/w"] == [2, 3]
        assert grouped["/flags"] == [6]
        assert grouped["<raw>"] == [40]

    def test_without_spec_everything_is_raw(self):
        mapper = FieldMapper(None)
        assert mapper.field_map() == {}
        assert mapper.describe_relevant_bytes([1, 2]) == {"<raw>": [1, 2]}


class TestSitesAndTargets:
    PROGRAM = """
    proc main() {
      w = (input(2) << 8) | input(3);
      flags = input(6);
      if (w > 60000) { halt "too wide"; }
      buf = alloc(w * w * 2) @ "demo.c@1";
      fixed = alloc(256);
    }
    """

    def test_identify_target_sites(self):
        program = Program.from_source(self.PROGRAM)
        sites = identify_target_sites(program, bytes([0, 0, 0, 40, 0, 0, 1]))
        assert len(sites) == 1
        assert sites[0].site_tag == "demo.c@1"
        assert sites[0].relevant_bytes == frozenset({2, 3})
        assert sites[0].seed_size == 3200

    def test_extract_target_observations(self):
        program = Program.from_source(self.PROGRAM)
        seed = bytes([0, 0, 0, 40, 0, 0, 1])
        sites = identify_target_sites(program, seed)
        mapper = FieldMapper(SIMPLE_SPEC)
        observations = extract_target_observations(program, seed, sites[0], mapper)
        assert len(observations) == 1
        observation = observations[0]
        assert observation.seed_size == 3200
        names = {str(v.name) for v in observation.size_expression.variables()}
        assert names == {"/w"}
        assert evaluate(observation.size_expression, {"/w": 40}) == 3200


class TestInputGeneratorAndDetection:
    PROGRAM = """
    proc main() {
      w = (input(2) << 8) | input(3);
      buf = alloc(w * w * 2) @ "demo.c@1";
      buf[w * w * 2 - 1] = 5;
      probe = buf[(w - 1) * w * 2];
    }
    """

    def test_generated_input_carries_field_values(self):
        seed = bytes([0xAA, 0xBB, 0, 40, 0, 0, 1])
        generator = InputGenerator(seed, SIMPLE_SPEC)
        candidate = generator.generate(Model({"/w": 0x1234}))
        assert candidate.data[2] == 0x12 and candidate.data[3] == 0x34
        assert candidate.data[0] == 0xAA  # magic untouched

    def test_detector_reports_overflow_and_errors(self):
        program = Program.from_source(self.PROGRAM)
        seed = bytes([0xAA, 0xBB, 0, 40, 0, 0, 1])
        detector = ErrorDetector(program, seed)
        assert not detector.seed_triggers(program.label_of_tag("demo.c@1"))
        # Choose w so that w*w*2 wraps: w = 0xFFFF -> w*w*2 = 0x1FFFC0002 wraps.
        candidate = InputGenerator(seed, SIMPLE_SPEC).generate(Model({"/w": 0xFFFF}))
        evaluation = detector.evaluate(candidate.data, program.label_of_tag("demo.c@1"))
        assert evaluation.site_executed
        assert evaluation.overflow_triggered
        assert evaluation.triggers_overflow
        assert evaluation.error_type() != "None"

    def test_detector_negative_candidate(self):
        program = Program.from_source(self.PROGRAM)
        seed = bytes([0xAA, 0xBB, 0, 40, 0, 0, 1])
        detector = ErrorDetector(program, seed)
        candidate = InputGenerator(seed, SIMPLE_SPEC).generate(Model({"/w": 50}))
        evaluation = detector.evaluate(candidate.data, program.label_of_tag("demo.c@1"))
        assert evaluation.site_executed
        assert not evaluation.overflow_triggered
        assert evaluation.new_memory_errors == []
