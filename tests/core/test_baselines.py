"""Tests for the baseline input-generation strategies."""

import pytest

from repro.core.baselines import (
    EnforcedSampling,
    FullPathEnforcement,
    RandomByteFuzzer,
    TaintDirectedFuzzer,
    TargetOnlySampling,
)
from repro.core.detection import ErrorDetector
from repro.core.enforcement import GoalDirectedEnforcer
from repro.core.fieldmap import FieldMapper
from repro.core.inputs import InputGenerator
from repro.core.sites import identify_target_sites
from repro.core.target import extract_target_observations
from repro.smt.solver import PortfolioSolver

from tests.core.test_enforcement_engine import MINI_SOURCE, MINI_SPEC, _mini_seed
from repro.apps.appbase import Application
from repro.lang.program import Program


@pytest.fixture(scope="module")
def mini_app():
    program = Program.from_source(MINI_SOURCE, name="mini")
    return Application(
        name="Mini",
        program=program,
        format_spec=MINI_SPEC,
        seed_input=_mini_seed(),
    )


def _observation(app, tag):
    sites = identify_target_sites(app.program, app.seed_input)
    site = next(s for s in sites if s.site_tag == tag)
    mapper = FieldMapper(app.format_spec)
    return extract_target_observations(
        app.program, app.seed_input, site, field_mapper=mapper
    )[0]


class TestTargetOnlySampling:
    def test_open_site_mostly_triggers(self, mini_app):
        result = TargetOnlySampling(mini_app, seed=1).run(
            _observation(mini_app, "open.c@2"), samples=25
        )
        assert result.attempts == 25
        assert result.success_rate > 0.75

    def test_guarded_site_rarely_triggers(self, mini_app):
        result = TargetOnlySampling(mini_app, seed=1).run(
            _observation(mini_app, "guarded.c@1"), samples=25
        )
        # The sanity checks reject essentially every raw target-constraint
        # solution — the bimodal behaviour of the paper's Section 5.5.
        assert result.success_rate < 0.3

    def test_ratio_format(self, mini_app):
        result = TargetOnlySampling(mini_app, seed=1).run(
            _observation(mini_app, "open.c@2"), samples=5
        )
        assert result.ratio() == f"{result.successes}/5"


class TestEnforcedSampling:
    def test_enforced_sampling_raises_success_rate(self, mini_app):
        observation = _observation(mini_app, "guarded.c@1")
        enforcer = GoalDirectedEnforcer(
            PortfolioSolver(),
            InputGenerator(mini_app.seed_input, mini_app.format_spec),
            ErrorDetector(mini_app.program, mini_app.seed_input),
        )
        enforcement = enforcer.run(observation)
        assert enforcement.found_overflow
        target_only = TargetOnlySampling(mini_app, seed=2).run(observation, samples=25)
        enforced = EnforcedSampling(mini_app, seed=2).run(enforcement, samples=25)
        assert enforced.success_rate > target_only.success_rate
        assert enforced.success_rate > 0.4


class TestFullPathEnforcement:
    def test_open_site_full_path_satisfiable(self, mini_app):
        result = FullPathEnforcement(mini_app).run(_observation(mini_app, "open.c@2"))
        assert result.satisfiable is True
        assert result.successes == result.attempts == 1

    def test_reports_relevant_branch_count(self, mini_app):
        result = FullPathEnforcement(mini_app).run(_observation(mini_app, "guarded.c@1"))
        assert "relevant_branches" in result.details


class TestFuzzers:
    def test_random_fuzzer_runs_and_counts(self, mini_app):
        sites = identify_target_sites(mini_app.program, mini_app.seed_input)
        site = next(s for s in sites if s.site_tag == "guarded.c@1")
        result = RandomByteFuzzer(mini_app, seed=3).run(site, attempts=30)
        assert result.attempts == 30
        assert 0 <= result.successes <= 30

    def test_taint_directed_fuzzer_targets_relevant_bytes(self, mini_app):
        sites = identify_target_sites(mini_app.program, mini_app.seed_input)
        site = next(s for s in sites if s.site_tag == "open.c@2")
        result = TaintDirectedFuzzer(mini_app, seed=3).run(site, attempts=30)
        assert result.attempts == 30
        # Fuzzing the 8 relevant bytes of an unchecked product site finds
        # overflows reasonably often (the BuzzFuzz observation).
        assert result.successes >= 1

    def test_fuzzers_rarely_pass_sanity_checks(self, mini_app):
        sites = identify_target_sites(mini_app.program, mini_app.seed_input)
        site = next(s for s in sites if s.site_tag == "guarded.c@1")
        random_result = RandomByteFuzzer(mini_app, seed=5).run(site, attempts=40)
        directed_result = TaintDirectedFuzzer(mini_app, seed=5).run(site, attempts=40)
        assert random_result.success_rate <= 0.2
        assert directed_result.success_rate <= 0.5
