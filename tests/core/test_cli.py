"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_application(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze", "unknown-app"])

    def test_accepts_known_applications(self):
        args = build_parser().parse_args(["analyze", "vlc"])
        assert args.application == "vlc"


class TestCommands:
    def test_analyze_text_output(self, capsys):
        assert main(["analyze", "vlc"]) == 0
        out = capsys.readouterr().out
        assert "VLC 0.8.6h" in out
        assert "diode_exposes_overflow" in out

    def test_analyze_json_output(self, capsys):
        assert main(["analyze", "cwebp", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["table1"]["total_target_sites"] == 7
        assert len(payload["sites"]) == 7

    def test_site_command_shows_enforcement_steps(self, capsys):
        assert main(["site", "vlc", "dec.c@277"]) == 0
        out = capsys.readouterr().out
        assert "classification: diode_exposes_overflow" in out
        assert "iteration 0" in out

    def test_site_command_unknown_site(self, capsys):
        assert main(["site", "vlc", "nothere.c@1"]) == 2
        err = capsys.readouterr().err
        assert "available" in err


class TestCampaignCommand:
    def test_campaign_runs_the_whole_registry(self, capsys):
        assert main(["campaign", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "Total" in out
        assert "40" in out
        assert "solver cache:" in out

    def test_campaign_serial_fallback(self, capsys):
        assert main(["campaign", "--jobs", "1", "--apps", "vlc"]) == 0
        out = capsys.readouterr().out
        assert "1 worker(s)" in out

    def test_campaign_no_cache_flag(self, capsys):
        assert main(["campaign", "--jobs", "1", "--no-cache", "--apps", "vlc"]) == 0
        out = capsys.readouterr().out
        assert "solver cache: disabled" in out

    def test_campaign_json_report(self, capsys):
        assert main(["campaign", "--jobs", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["jobs"] == 2
        assert payload["cache_enabled"] is True
        assert payload["unit_count"] == 40
        assert payload["table1_totals"]["total_target_sites"] == 40
        assert payload["cache_stats"]["hits"] > 0
        assert set(payload["classifications"]) == set(payload["table1"])

    def test_campaign_no_cnf_skeletons_flag(self, capsys):
        assert (
            main(
                [
                    "campaign",
                    "--jobs",
                    "1",
                    "--apps",
                    "vlc",
                    "--no-cnf-skeletons",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["cnf_skeletons"] is False

    def test_campaign_cnf_skeleton_ablation_parity(self, capsys):
        """Skeleton reuse is a pure perf path: classifications with and
        without it are identical."""
        assert main(["campaign", "--jobs", "1", "--apps", "vlc", "--json"]) == 0
        default = json.loads(capsys.readouterr().out)
        assert default["cnf_skeletons"] is True
        assert (
            main(
                [
                    "campaign",
                    "--jobs",
                    "1",
                    "--apps",
                    "vlc",
                    "--no-cnf-skeletons",
                    "--json",
                ]
            )
            == 0
        )
        ablated = json.loads(capsys.readouterr().out)
        assert ablated["classifications"] == default["classifications"]

    def test_campaign_json_matches_serial_analyze(self, capsys):
        """The acceptance bar: campaign output == serial Diode.analyze."""
        assert main(["campaign", "--jobs", "4", "--json"]) == 0
        campaign = json.loads(capsys.readouterr().out)

        from repro.apps import all_applications
        from repro.core import Diode

        engine = Diode()
        for application in all_applications():
            result = engine.analyze(application)
            serial = {
                site.site.name: site.classification.value
                for site in result.site_results
            }
            assert campaign["classifications"][result.application] == serial

    def test_campaign_rejects_unknown_app(self):
        with pytest.raises(SystemExit):
            main(["campaign", "--apps", "not-an-app"])

    def test_campaign_rejects_bad_jobs_value(self):
        with pytest.raises(SystemExit):
            main(["campaign", "--jobs", "many"])

    @pytest.mark.parametrize("jobs", ["0", "-3"])
    def test_campaign_rejects_non_positive_jobs(self, capsys, jobs):
        """``--jobs`` below 1 fails parsing with a clear message instead of
        silently reaching the backend."""
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "--jobs", jobs, "--apps", "vlc"])
        assert excinfo.value.code == 2
        assert "--jobs must be >= 1" in capsys.readouterr().err

    def test_campaign_no_incremental_flag_keeps_classifications(self, capsys):
        """The fresh-query ablation path reports identical classifications."""
        assert main(["campaign", "--jobs", "1", "--apps", "vlc", "--json"]) == 0
        incremental = json.loads(capsys.readouterr().out)
        assert incremental["incremental"] is True
        assert (
            main(
                [
                    "campaign",
                    "--jobs",
                    "1",
                    "--apps",
                    "vlc",
                    "--no-incremental",
                    "--json",
                ]
            )
            == 0
        )
        fresh = json.loads(capsys.readouterr().out)
        assert fresh["incremental"] is False
        assert fresh["classifications"] == incremental["classifications"]

    def test_campaign_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            main(["campaign", "--backend", "gpu"])

    def test_campaign_rejects_cache_dir_with_no_cache(self, capsys, tmp_path):
        code = main(
            [
                "campaign",
                "--no-cache",
                "--cache-dir",
                str(tmp_path / "store"),
                "--apps",
                "vlc",
            ]
        )
        assert code == 2
        assert "--no-cache" in capsys.readouterr().err
        assert not (tmp_path / "store").exists()

    def test_campaign_process_backend_json(self, capsys):
        assert (
            main(
                [
                    "campaign",
                    "--backend",
                    "process",
                    "--jobs",
                    "2",
                    "--apps",
                    "vlc",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["backend"] == "process"
        assert payload["version"]
        assert payload["table1_totals"]["total_target_sites"] == 4

    def test_campaign_cache_dir_warm_start(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "store")
        args = ["campaign", "--jobs", "1", "--apps", "vlc", "--cache-dir", cache_dir]
        assert main(args + ["--json"]) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["cache_store"]["loaded"] == 0
        assert cold["cache_store"]["saved"] > 0

        assert main(args + ["--json"]) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["cache_store"]["loaded"] == cold["cache_store"]["saved"]
        assert (
            warm["cache_stats"]["hit_rate"] > cold["cache_stats"]["hit_rate"]
        )
        assert warm["classifications"] == cold["classifications"]

    def test_campaign_text_output_names_backend_and_store(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "store")
        assert (
            main(
                ["campaign", "--jobs", "1", "--apps", "vlc", "--cache-dir", cache_dir]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "on the serial backend" in out
        assert "cache store" in out


class TestCampaignTriageFlags:
    def test_campaign_json_reports_triage_stats(self, capsys):
        assert main(["campaign", "--jobs", "1", "--apps", "dillo", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        triage = payload["triage"]
        assert triage["raw_reports"] == 3
        assert triage["distinct"] == 3
        assert triage["validation_failures"] == 0
        assert triage["dedup_ratio"] == 1.0
        assert triage["minimized"] == 3
        assert payload["corpus"] is None

    def test_campaign_corpus_dir_round_trip(self, capsys, tmp_path):
        corpus_dir = str(tmp_path / "corpus")
        args = ["campaign", "--jobs", "1", "--apps", "dillo", "--corpus-dir", corpus_dir]
        assert main(args + ["--json"]) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["corpus"]["loaded"] == 0
        assert cold["corpus"]["saved"] == 3

        assert main(args + ["--skip-known", "--json"]) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["corpus"]["loaded"] == 3
        assert warm["corpus"]["skipped_known"] == 3
        assert warm["classifications"] == cold["classifications"]

    def test_campaign_text_output_reports_triage(self, capsys, tmp_path):
        corpus_dir = str(tmp_path / "corpus")
        assert (
            main(
                ["campaign", "--jobs", "1", "--apps", "dillo", "--corpus-dir", corpus_dir]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "witness triage:" in out
        assert "witness corpus" in out

    def test_no_save_corpus_reports_not_saved(self, capsys, tmp_path):
        corpus_dir = str(tmp_path / "corpus")
        args = [
            "campaign", "--jobs", "1", "--apps", "dillo",
            "--corpus-dir", corpus_dir, "--no-save-corpus",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "not saved back" in out
        assert "now holds" not in out
        assert main(args + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["corpus"]["saved"] is None

    def test_skip_known_without_corpus_dir_is_rejected(self, capsys):
        assert main(["campaign", "--jobs", "1", "--skip-known"]) == 2
        assert "--corpus-dir" in capsys.readouterr().err

    def test_no_minimize_flag(self, capsys):
        assert (
            main(
                ["campaign", "--jobs", "1", "--apps", "dillo", "--no-minimize", "--json"]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["triage"]["minimized"] == 0
        assert payload["triage"]["distinct"] == 3


class TestReplayCommand:
    def test_replay_missing_corpus_fails(self, capsys, tmp_path):
        assert main(["replay", "--corpus-dir", str(tmp_path / "nope")]) == 2
        assert "no witness corpus" in capsys.readouterr().err

    def test_replay_round_trip(self, capsys, tmp_path):
        corpus_dir = str(tmp_path / "corpus")
        assert (
            main(
                ["campaign", "--jobs", "1", "--apps", "dillo", "--corpus-dir", corpus_dir]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["replay", "--corpus-dir", corpus_dir, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["records"] == 3
        assert payload["counts"] == {"still-triggers": 3}
        assert all(
            entry["status"] == "still-triggers" for entry in payload["entries"]
        )

    def test_replay_strict_flags_regressions(self, capsys, tmp_path):
        from repro.triage.corpus import CorpusStore

        corpus_dir = str(tmp_path / "corpus")
        assert (
            main(
                ["campaign", "--jobs", "1", "--apps", "dillo", "--corpus-dir", corpus_dir]
            )
            == 0
        )
        capsys.readouterr()
        store = CorpusStore(corpus_dir)
        records = store.load()
        for record in records.values():
            record.field_values = {path: 1 for path in record.field_values}
            record.input_hex = None
        store.save(records, merge=False)
        assert main(["replay", "--corpus-dir", corpus_dir, "--strict"]) == 1
        out = capsys.readouterr().out
        assert "no-longer-triggers" in out
        # Replay wrote the statuses back to the corpus.
        assert all(
            record.status == "no-longer-triggers"
            for record in CorpusStore(corpus_dir).load().values()
        )

    def test_replay_app_filter(self, capsys, tmp_path):
        corpus_dir = str(tmp_path / "corpus")
        assert (
            main(
                ["campaign", "--jobs", "1", "--apps", "dillo", "--corpus-dir", corpus_dir]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["replay", "--corpus-dir", corpus_dir, "--apps", "vlc"]) == 0
        out = capsys.readouterr().out
        assert "0 witness(es) replayed" in out


class TestVersionFlag:
    def test_version_flag_prints_the_package_version(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as info:
            main(["--version"])
        assert info.value.code == 0
        assert __version__ in capsys.readouterr().out


class TestEventFlags:
    def test_no_events_with_progress_is_rejected(self, capsys):
        assert (
            main(["campaign", "--apps", "dillo", "--no-events", "--progress"])
            == 2
        )
        assert "--no-events" in capsys.readouterr().err

    def test_no_events_with_watchdog_is_rejected(self, capsys):
        assert (
            main(["campaign", "--apps", "dillo", "--no-events", "--watchdog"])
            == 2
        )
        assert "--no-events" in capsys.readouterr().err

    def test_campaign_text_reports_event_stream(self, capsys):
        assert main(["campaign", "--jobs", "1", "--apps", "dillo"]) == 0
        assert "event stream:" in capsys.readouterr().out

    def test_campaign_json_carries_event_counts(self, capsys):
        assert main(["campaign", "--jobs", "1", "--apps", "dillo", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        events = payload["events"]["events"]
        assert events["unit.queued"] == payload["unit_count"]
        assert events["unit.finished"] == payload["unit_count"]
        assert events.get("unit.failed", 0) == 0

    def test_no_events_json_reports_null_block(self, capsys):
        assert (
            main(
                ["campaign", "--jobs", "1", "--apps", "dillo", "--no-events",
                 "--json"]
            )
            == 0
        )
        assert json.loads(capsys.readouterr().out)["events"] is None

    def test_campaign_progress_renders_on_stderr(self, capsys):
        assert main(["campaign", "--jobs", "1", "--apps", "dillo", "--progress"]) == 0
        err = capsys.readouterr().err
        assert "done" in err and "in-flight" in err


class TestTraceCommandErrors:
    def test_missing_trace_dir_is_a_one_line_error(self, capsys):
        assert main(["trace", "--trace-dir", "/nonexistent/trace"]) == 2
        err = capsys.readouterr().err
        assert err.strip() and "Traceback" not in err

    def test_empty_trace_dir_is_a_one_line_error(self, capsys, tmp_path):
        from repro.obs.trace import ensure_trace_dir

        trace_dir = str(tmp_path / "trace")
        ensure_trace_dir(trace_dir)  # meta.json only, no records
        assert main(["trace", "--trace-dir", trace_dir]) == 2
        assert "no trace records" in capsys.readouterr().err

    def test_mismatched_meta_version_is_a_one_line_error(self, capsys, tmp_path):
        trace_dir = tmp_path / "trace"
        trace_dir.mkdir()
        (trace_dir / "meta.json").write_text(
            json.dumps({"format": "repro-trace", "version": 999})
        )
        assert main(["trace", "--trace-dir", str(trace_dir)]) == 2
        err = capsys.readouterr().err
        assert err.strip() and "Traceback" not in err


class TestEventsCommand:
    def _traced_campaign(self, tmp_path, capsys):
        trace_dir = str(tmp_path / "trace")
        assert (
            main(
                ["campaign", "--jobs", "1", "--apps", "dillo", "--trace-dir",
                 trace_dir]
            )
            == 0
        )
        capsys.readouterr()
        return trace_dir

    def test_summary_table(self, capsys, tmp_path):
        trace_dir = self._traced_campaign(tmp_path, capsys)
        assert main(["events", "--trace-dir", trace_dir]) == 0
        out = capsys.readouterr().out
        assert "unit.finished" in out
        assert "unit(s) finished" in out

    def test_tail_prints_formatted_lines(self, capsys, tmp_path):
        trace_dir = self._traced_campaign(tmp_path, capsys)
        assert main(["events", "--trace-dir", trace_dir, "--tail", "3"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        assert all("[" in line for line in lines)  # pid column

    def test_json_counts_close_over_lifecycle(self, capsys, tmp_path):
        trace_dir = self._traced_campaign(tmp_path, capsys)
        assert main(["events", "--trace-dir", trace_dir, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["invalid_records"] == 0
        counts = payload["counts"]
        assert counts["unit.started"] == counts["unit.finished"]

    def test_follow_mode_drains_and_exits_on_duration(self, capsys, tmp_path):
        trace_dir = self._traced_campaign(tmp_path, capsys)
        assert (
            main(
                ["events", "--trace-dir", trace_dir, "--follow",
                 "--duration", "0.2", "--poll", "0.05"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "unit.started" in out

    def test_missing_dir_is_a_one_line_error(self, capsys):
        assert main(["events", "--trace-dir", "/nonexistent/trace"]) == 2
        err = capsys.readouterr().err
        assert err.strip() and "Traceback" not in err

    def test_no_events_campaign_leaves_nothing_to_report(self, capsys, tmp_path):
        trace_dir = str(tmp_path / "trace")
        assert (
            main(
                ["campaign", "--jobs", "1", "--apps", "dillo", "--no-events",
                 "--trace-dir", trace_dir]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["events", "--trace-dir", trace_dir]) == 2
        assert "no event records" in capsys.readouterr().err


class TestBenchDiffCommand:
    _BASE = {"benchmark": "observability", "version": "1.7.0",
             "overhead": 1.05, "weighted_stage_coverage": 0.95,
             "worst_unit_coverage": 1.0, "invalid_records": 0,
             "invalid_event_records": 0}

    def _write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_identical_runs_pass(self, capsys, tmp_path):
        baseline = self._write(tmp_path, "base.json", self._BASE)
        current = self._write(tmp_path, "cur.json", self._BASE)
        assert main(["bench-diff", "--baseline", baseline, "--current", current]) == 0
        assert "OK: no regressions" in capsys.readouterr().out

    def test_regression_exits_one_with_fail_lines(self, capsys, tmp_path):
        baseline = self._write(tmp_path, "base.json", self._BASE)
        current = self._write(
            tmp_path, "cur.json",
            dict(self._BASE, overhead=1.9, invalid_event_records=3),
        )
        assert main(["bench-diff", "--baseline", baseline, "--current", current]) == 1
        out = capsys.readouterr().out
        assert out.count("FAIL:") == 2
        assert "REGRESSION" in out

    def test_newest_history_record_wins(self, capsys, tmp_path):
        from repro.obs.benchhist import append_history

        baseline = self._write(tmp_path, "base.json", self._BASE)
        append_history(dict(self._BASE, overhead=9.9), "a.json", str(tmp_path))
        append_history(dict(self._BASE), "a.json", str(tmp_path))
        assert (
            main(
                ["bench-diff", "--baseline", baseline, "--history",
                 str(tmp_path / "BENCH_history.jsonl"), "--benchmark",
                 "observability"]
            )
            == 0
        )

    def test_requires_exactly_one_source(self, capsys, tmp_path):
        baseline = self._write(tmp_path, "base.json", self._BASE)
        assert main(["bench-diff", "--baseline", baseline]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_benchmark_mismatch_is_rejected(self, capsys, tmp_path):
        baseline = self._write(tmp_path, "base.json", self._BASE)
        current = self._write(
            tmp_path, "cur.json", {"benchmark": "campaign", "speedup": 2.0}
        )
        assert main(["bench-diff", "--baseline", baseline, "--current", current]) == 2
        assert "mismatch" in capsys.readouterr().err

    def test_unreadable_baseline_is_rejected(self, capsys, tmp_path):
        current = self._write(tmp_path, "cur.json", self._BASE)
        assert (
            main(
                ["bench-diff", "--baseline", str(tmp_path / "nope.json"),
                 "--current", current]
            )
            == 2
        )
        assert "cannot read" in capsys.readouterr().err

    def test_json_verdict(self, capsys, tmp_path):
        baseline = self._write(tmp_path, "base.json", self._BASE)
        current = self._write(tmp_path, "cur.json", dict(self._BASE, overhead=1.9))
        assert (
            main(
                ["bench-diff", "--baseline", baseline, "--current", current,
                 "--json"]
            )
            == 1
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["regressions"][0]["metric"] == "overhead"
