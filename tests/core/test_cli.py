"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_application(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze", "unknown-app"])

    def test_accepts_known_applications(self):
        args = build_parser().parse_args(["analyze", "vlc"])
        assert args.application == "vlc"


class TestCommands:
    def test_analyze_text_output(self, capsys):
        assert main(["analyze", "vlc"]) == 0
        out = capsys.readouterr().out
        assert "VLC 0.8.6h" in out
        assert "diode_exposes_overflow" in out

    def test_analyze_json_output(self, capsys):
        assert main(["analyze", "cwebp", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["table1"]["total_target_sites"] == 7
        assert len(payload["sites"]) == 7

    def test_site_command_shows_enforcement_steps(self, capsys):
        assert main(["site", "vlc", "dec.c@277"]) == 0
        out = capsys.readouterr().out
        assert "classification: diode_exposes_overflow" in out
        assert "iteration 0" in out

    def test_site_command_unknown_site(self, capsys):
        assert main(["site", "vlc", "nothere.c@1"]) == 2
        err = capsys.readouterr().err
        assert "available" in err
