"""Tests for UNSAT-core-guided enforcement and per-site session reuse.

Parity is the contract: core guidance answers a candidate query from an
accumulated core only when the solver was *guaranteed* to return UNSAT
(superset of an unsatisfiable set), so guided and unguided enforcement
take identical decisions — checked here per site on a synthetic
application and registry-wide as a campaign classification comparison.
"""

from __future__ import annotations

import pytest

from repro.apps.appbase import Application
from repro.core.campaign import CampaignConfig, run_campaign
from repro.core.detection import ErrorDetector
from repro.core.enforcement import EnforcementOutcome, GoalDirectedEnforcer
from repro.core.fieldmap import FieldMapper
from repro.core.inputs import InputGenerator
from repro.core.sites import identify_target_sites
from repro.core.target import extract_target_observations
from repro.formats.fields import Endianness, FieldKind, FieldSpec
from repro.formats.spec import FormatSpec
from repro.lang.program import Program
from repro.smt.solver import TELEMETRY, PortfolioSolver, SolverConfig

# One immediately-exposed site, one site whose target constraint is
# unsatisfiable (16-bit quantity * 4 cannot exceed the overflow bound), and
# one capped site the sanity checks protect.
SOURCE = """
proc be32(o) {
  v = (input(o) << 24) | (input(o + 1) << 16) | (input(o + 2) << 8) | input(o + 3);
  return v;
}

proc main() {
  count = be32(4);
  unit  = be32(8);
  small = (input(12) << 8) | input(13);

  open_buf = alloc(count * unit) @ "open.c@1";

  if (count > 100000) { halt "count too large"; }
  if (unit > 100000) { halt "unit too large"; }

  capped_buf = alloc(count * 8 + unit) @ "capped.c@2";
  narrow_buf = alloc(small * 4) @ "narrow.c@3";
}
"""

SPEC = FormatSpec(
    "guidance",
    [
        FieldSpec("/magic", 0, 4, FieldKind.MAGIC, mutable=False),
        FieldSpec("/count", 4, 4, FieldKind.UINT, Endianness.BIG),
        FieldSpec("/unit", 8, 4, FieldKind.UINT, Endianness.BIG),
        FieldSpec("/small", 12, 2, FieldKind.UINT, Endianness.BIG),
    ],
)


def _seed() -> bytes:
    return (
        b"GDNC"
        + (20).to_bytes(4, "big")
        + (16).to_bytes(4, "big")
        + (9).to_bytes(2, "big")
        + bytes(2)
    )


@pytest.fixture(scope="module")
def app() -> Application:
    return Application(
        name="Guidance",
        program=Program.from_source(SOURCE, name="guidance"),
        format_spec=SPEC,
        seed_input=_seed(),
        expectations=[],
    )


def _enforcer(app: Application, config: SolverConfig) -> GoalDirectedEnforcer:
    return GoalDirectedEnforcer(
        PortfolioSolver(config),
        InputGenerator(app.seed_input, app.format_spec),
        ErrorDetector(app.program, app.seed_input),
    )


def _observation(app: Application, tag: str):
    sites = identify_target_sites(app.program, app.seed_input)
    site = next(s for s in sites if s.site_tag == tag)
    return extract_target_observations(
        app.program, app.seed_input, site, field_mapper=FieldMapper(app.format_spec)
    )[0]


class TestGuidedParity:
    @pytest.mark.parametrize("tag", ["open.c@1", "capped.c@2", "narrow.c@3"])
    def test_guided_matches_unguided_per_site(self, app, tag):
        observation = _observation(app, tag)
        guided = _enforcer(app, SolverConfig()).run(observation)
        unguided = _enforcer(
            app, SolverConfig(enable_unsat_cores=False)
        ).run(observation)
        assert guided.outcome is unguided.outcome
        assert guided.enforced_count == unguided.enforced_count
        assert [s.solver_status for s in guided.steps] == [
            s.solver_status for s in unguided.steps
        ]

    def test_registry_campaign_parity_guided_vs_unguided(self):
        def classifications(guided: bool):
            config = CampaignConfig(jobs=1, backend="serial")
            config.diode.solver.enable_unsat_cores = guided
            return run_campaign(config).classifications()

        assert classifications(True) == classifications(False)


class TestCoreAccumulation:
    def test_unsat_target_accumulates_a_core(self, app):
        enforcer = _enforcer(app, SolverConfig())
        result = enforcer.run(_observation(app, "narrow.c@3"))
        assert result.outcome is EnforcementOutcome.TARGET_UNSATISFIABLE
        assert len(enforcer.accumulated_cores) == 1

    def test_rerun_is_answered_from_the_core_without_a_solver_call(self, app):
        enforcer = _enforcer(app, SolverConfig())
        observation = _observation(app, "narrow.c@3")
        first = enforcer.run(observation)

        before = TELEMETRY.snapshot()
        second = enforcer.run(observation)
        after = TELEMETRY.snapshot()

        assert second.outcome is first.outcome
        assert after["core_pruned_candidates"] == before["core_pruned_candidates"] + 1
        # The pruned β query never reached the solver.
        assert after["session_checks"] == before["session_checks"]

    def test_unguided_rerun_pays_the_solver_call(self, app):
        enforcer = _enforcer(app, SolverConfig(enable_unsat_cores=False))
        observation = _observation(app, "narrow.c@3")
        enforcer.run(observation)
        assert enforcer.accumulated_cores == ()

        before = TELEMETRY.snapshot()
        enforcer.run(observation)
        after = TELEMETRY.snapshot()
        assert after["session_checks"] > before["session_checks"]
        assert after["core_pruned_candidates"] == before["core_pruned_candidates"]


class TestSessionReuse:
    def test_site_session_is_reused_across_observations(self, app):
        enforcer = _enforcer(app, SolverConfig(enable_unsat_cores=False))
        observation = _observation(app, "capped.c@2")
        before = TELEMETRY.snapshot()
        first = enforcer.run(observation)
        session = enforcer._session
        assert session is not None
        second = enforcer.run(observation)
        after = TELEMETRY.snapshot()
        assert enforcer._session is session
        assert after["sessions_reused"] == before["sessions_reused"] + 1
        assert first.outcome is second.outcome
        # The reused session was popped back before the second observation:
        # its stack holds only the second run's frames.
        assert len(session) == len(second.enforced_branches) + 1

    def test_reuse_disabled_opens_a_fresh_session_per_observation(self, app):
        enforcer = _enforcer(
            app, SolverConfig(reuse_sessions=False, enable_unsat_cores=False)
        )
        observation = _observation(app, "capped.c@2")
        before = TELEMETRY.snapshot()
        enforcer.run(observation)
        assert enforcer._session is None
        enforcer.run(observation)
        after = TELEMETRY.snapshot()
        assert after["sessions_reused"] == before["sessions_reused"]
