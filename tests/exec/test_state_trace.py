"""Unit tests for the execution-state containers, memcheck and trace reports."""

import pytest

from repro.exec.memcheck import MemcheckMonitor, SegmentationFault
from repro.exec.state import (
    AllocationRecord,
    BranchObservation,
    Environment,
    Memory,
)
from repro.exec.trace import (
    ExecutionOutcome,
    ExecutionReport,
    MemoryError as TraceMemoryError,
    MemoryErrorKind,
)


class TestEnvironment:
    def test_undefined_reads_as_zero(self):
        assert Environment().read("nothing") == (0, None)

    def test_write_then_read(self):
        env = Environment()
        env.write("x", 7, "annotation")
        assert env.read("x") == (7, "annotation")
        assert env.defined("x") and not env.defined("y")

    def test_snapshot_is_a_copy(self):
        env = Environment()
        env.write("x", 1)
        snapshot = env.snapshot()
        env.write("x", 2)
        assert snapshot["x"][0] == 1

    def test_names_and_len(self):
        env = Environment()
        env.write("a", 1)
        env.write("b", 2)
        assert set(env.names()) == {"a", "b"}
        assert len(env) == 2


class TestMemory:
    def test_allocation_addresses_are_distinct(self):
        memory = Memory()
        first = memory.allocate(16, site_label=1)
        second = memory.allocate(16, site_label=2)
        assert first.address != second.address
        assert len(memory) == 2

    def test_block_lookup(self):
        memory = Memory()
        block = memory.allocate(8, site_label=3, site_tag="t")
        assert memory.block_at(block.address) is block
        assert memory.block_at(12345) is None
        assert block.site_tag == "t"

    def test_read_write_cells(self):
        memory = Memory()
        block = memory.allocate(8, site_label=1)
        memory.write(block.address, 3, 99, "ann")
        assert memory.read(block.address, 3) == (99, "ann")
        assert memory.read(block.address, 4) == (0, None)

    def test_read_unknown_block_is_zero(self):
        assert Memory().read(42, 0) == (0, None)

    def test_in_bounds(self):
        block = Memory().allocate(4, site_label=1)
        assert block.in_bounds(0) and block.in_bounds(3)
        assert not block.in_bounds(4) and not block.in_bounds(-1)


class TestMemcheckMonitor:
    def _setup(self, size=16):
        memory = Memory()
        block = memory.allocate(size, site_label=7, site_tag="tag")
        return memory, block, MemcheckMonitor(page_size=64)

    def test_in_bounds_access_is_clean(self):
        memory, block, monitor = self._setup()
        assert monitor.check_access(memory, block.address, 3, True, 1, 1) is None
        assert monitor.errors == []

    def test_small_overrun_is_invalid_but_not_fatal(self):
        memory, block, monitor = self._setup()
        error = monitor.check_access(memory, block.address, 20, True, 1, 1)
        assert error is not None
        assert error.kind is MemoryErrorKind.INVALID_WRITE
        assert not error.is_crash

    def test_far_overrun_faults(self):
        memory, block, monitor = self._setup()
        with pytest.raises(SegmentationFault):
            monitor.check_access(memory, block.address, 16 + 64, False, 1, 1)
        assert monitor.errors[0].kind is MemoryErrorKind.SEGFAULT_READ

    def test_wild_pointer_faults(self):
        memory, _block, monitor = self._setup()
        with pytest.raises(SegmentationFault):
            monitor.check_access(memory, 0xDEAD, 0, True, 1, 1)
        assert monitor.errors[0].allocation_site_label == -1

    def test_error_records_site_metadata(self):
        memory, block, monitor = self._setup()
        error = monitor.check_access(memory, block.address, 17, False, access_label=9, sequence_index=4)
        assert error.allocation_site_tag == "tag"
        assert error.allocation_site_label == 7
        assert error.access_label == 9

    def test_error_cap(self):
        memory, block, _ = self._setup()
        monitor = MemcheckMonitor(page_size=64, max_errors=2)
        for offset in (17, 18, 19):
            monitor.check_access(memory, block.address, offset, True, 1, 1)
        assert len(monitor.errors) == 2


class TestExecutionReport:
    def _report(self):
        report = ExecutionReport()
        report.allocations = [
            AllocationRecord(5, "a", 100, None, 1000, 1),
            AllocationRecord(9, "b", 200, None, 2000, 2),
            AllocationRecord(5, "a", 100, None, 3000, 3),
        ]
        report.branches = [
            BranchObservation(2, True, None, 1),
            BranchObservation(2, False, None, 2),
        ]
        report.memory_errors = [
            TraceMemoryError(
                MemoryErrorKind.SEGFAULT_WRITE, 1000, 100, 5000, 5, "a", 11, 4
            )
        ]
        return report

    def test_allocations_at(self):
        assert len(self._report().allocations_at(5)) == 2

    def test_executed_site_labels_deduplicated_in_order(self):
        assert self._report().executed_site_labels() == [5, 9]

    def test_errors_for_site(self):
        assert len(self._report().errors_for_site(5)) == 1
        assert self._report().errors_for_site(9) == []

    def test_error_signatures(self):
        signatures = self._report().error_signatures()
        assert signatures == {("SIGSEGV/InvalidWrite", 5, 11)}

    def test_branch_path(self):
        assert self._report().branch_path() == [(2, True), (2, False)]

    def test_outcome_flags(self):
        report = self._report()
        report.outcome = ExecutionOutcome.CRASHED
        assert report.crashed and not report.halted
        report.outcome = ExecutionOutcome.HALTED
        assert report.halted and not report.crashed

    def test_summary_mentions_counts(self):
        summary = self._report().summary()
        assert "allocs=3" in summary and "branches=2" in summary

    def test_memory_error_is_crash_classification(self):
        error = self._report().memory_errors[0]
        assert error.is_crash
        benign = TraceMemoryError(
            MemoryErrorKind.INVALID_READ, 1, 4, 5, 1, None, 2, 3
        )
        assert not benign.is_crash
