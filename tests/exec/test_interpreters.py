"""Tests for the concrete, taint, concolic and overflow-witness interpreters."""

import pytest

from repro.exec.concolic import ConcolicInterpreter, input_byte_variable, input_variable_offset
from repro.exec.concrete import ConcreteInterpreter, ExecutionLimits
from repro.exec.overflow_witness import OverflowWitnessInterpreter
from repro.exec.taint import TaintInterpreter
from repro.exec.trace import ExecutionOutcome, MemoryErrorKind
from repro.exec.values import MachineInt
from repro.lang.ast import BinaryOp, UnaryOp
from repro.lang.program import Program
from repro.smt.evalmodel import evaluate


def _program(body: str) -> Program:
    return Program.from_source("proc main() { " + body + " }")


class TestMachineInt:
    machine = MachineInt(8)

    def test_wrap(self):
        assert self.machine.wrap(300) == 44

    def test_signed(self):
        assert self.machine.to_signed(0xFF) == -1

    def test_add_wraps(self):
        assert self.machine.binary(BinaryOp.ADD, 200, 100) == 44

    def test_mul_wraps(self):
        assert self.machine.binary(BinaryOp.MUL, 16, 16) == 0

    def test_div_by_zero(self):
        assert self.machine.binary(BinaryOp.DIV, 10, 0) == 0xFF

    def test_mod_by_zero(self):
        assert self.machine.binary(BinaryOp.MOD, 10, 0) == 10

    def test_shift_beyond_width(self):
        assert self.machine.binary(BinaryOp.SHL, 1, 9) == 0
        assert self.machine.binary(BinaryOp.SHR, 255, 9) == 0

    def test_signed_comparison(self):
        assert self.machine.binary(BinaryOp.SLT, 0xFF, 0) == 1
        assert self.machine.binary(BinaryOp.LT, 0xFF, 0) == 0

    def test_logical_operators(self):
        assert self.machine.binary(BinaryOp.AND, 3, 0) == 0
        assert self.machine.binary(BinaryOp.OR, 0, 7) == 1

    def test_abs(self):
        assert self.machine.unary(UnaryOp.ABS, 0xFF) == 1
        assert self.machine.unary(UnaryOp.ABS, 5) == 5

    def test_not(self):
        assert self.machine.unary(UnaryOp.NOT, 0) == 1
        assert self.machine.unary(UnaryOp.NOT, 9) == 0


class TestConcreteInterpreter:
    def test_arithmetic_and_environment(self):
        report = ConcreteInterpreter(_program("x = 2 + 3 * 4;")).run(b"")
        assert report.final_environment["x"][0] == 14

    def test_input_bytes_and_size(self):
        report = ConcreteInterpreter(
            _program("a = input(0); b = input(9); n = input_size;")
        ).run(bytes([7, 8]))
        env = report.final_environment
        assert env["a"][0] == 7
        assert env["b"][0] == 0  # past the end reads as zero
        assert env["n"][0] == 2

    def test_if_branches_recorded(self):
        report = ConcreteInterpreter(
            _program("if (input(0) > 5) { x = 1; } else { x = 2; }")
        ).run(bytes([9]))
        assert report.final_environment["x"][0] == 1
        assert report.branch_path() == [(report.branches[0].label, True)]

    def test_while_loop_counts(self):
        report = ConcreteInterpreter(
            _program("i = 0; while (i < 5) { i = i + 1; }")
        ).run(b"")
        assert report.final_environment["i"][0] == 5
        taken = [taken for _label, taken in report.branch_path()]
        assert taken == [True] * 5 + [False]

    def test_halt_outcome(self):
        report = ConcreteInterpreter(_program('halt "fatal";')).run(b"")
        assert report.outcome is ExecutionOutcome.HALTED
        assert report.halt_message == "fatal"

    def test_warning_recorded(self):
        report = ConcreteInterpreter(_program('warn "odd"; x = 1;')).run(b"")
        assert report.warnings == ["odd"]
        assert report.outcome is ExecutionOutcome.COMPLETED

    def test_allocation_and_memory_roundtrip(self):
        report = ConcreteInterpreter(
            _program("buf = alloc(8); buf[3] = 77; x = buf[3]; y = buf[4];")
        ).run(b"")
        assert report.final_environment["x"][0] == 77
        assert report.final_environment["y"][0] == 0
        assert len(report.allocations) == 1
        assert report.allocations[0].requested_size == 8

    def test_out_of_bounds_write_within_page_is_recorded_not_fatal(self):
        report = ConcreteInterpreter(
            _program("buf = alloc(4); buf[5] = 1; x = 3;")
        ).run(b"")
        assert report.outcome is ExecutionOutcome.COMPLETED
        assert len(report.memory_errors) == 1
        assert report.memory_errors[0].kind is MemoryErrorKind.INVALID_WRITE
        assert report.final_environment["x"][0] == 3

    def test_far_out_of_bounds_write_is_a_crash(self):
        report = ConcreteInterpreter(
            _program("buf = alloc(4); buf[100000] = 1; x = 3;")
        ).run(b"")
        assert report.outcome is ExecutionOutcome.CRASHED
        assert report.memory_errors[0].kind is MemoryErrorKind.SEGFAULT_WRITE
        assert "x" not in report.final_environment

    def test_negative_offset_read(self):
        report = ConcreteInterpreter(
            _program("buf = alloc(4); x = buf[0 - 1];")
        ).run(b"")
        assert any(
            e.kind in (MemoryErrorKind.INVALID_READ, MemoryErrorKind.SEGFAULT_READ)
            for e in report.memory_errors
        )

    def test_wild_access_through_non_pointer(self):
        report = ConcreteInterpreter(_program("x = 5; x[0] = 1;")).run(b"")
        assert report.outcome is ExecutionOutcome.CRASHED

    def test_step_limit(self):
        limits = ExecutionLimits(max_steps=100)
        report = ConcreteInterpreter(
            _program("i = 0; while (i < 100000) { i = i + 1; }"), limits=limits
        ).run(b"")
        assert report.outcome is ExecutionOutcome.STEP_LIMIT

    def test_allocation_site_tag_recorded(self):
        report = ConcreteInterpreter(
            _program('buf = alloc(input(0)) @ "site.x";')
        ).run(bytes([12]))
        assert report.allocations[0].site_tag == "site.x"
        assert report.allocations[0].requested_size == 12


class TestTaintInterpreter:
    def test_allocation_taint_tracks_relevant_bytes(self):
        program = _program(
            "w = input(0) | (input(1) << 8); pad = input(5); buf = alloc(w * 2);"
        )
        taint = TaintInterpreter(program).run_taint(bytes([4, 0, 0, 0, 0, 9]))
        sites = taint.target_sites()
        assert len(sites) == 1
        assert taint.relevant_bytes_for(sites[0]) == frozenset({0, 1})

    def test_untainted_allocation_not_a_target(self):
        program = _program("x = input(0); buf = alloc(64);")
        taint = TaintInterpreter(program).run_taint(bytes([1]))
        assert taint.target_sites() == []

    def test_taint_through_memory(self):
        program = _program(
            "buf = alloc(8); buf[0] = input(2); v = buf[0]; out = alloc(v + 1);"
        )
        taint = TaintInterpreter(program).run_taint(bytes([0, 0, 5]))
        sites = taint.target_sites()
        assert len(sites) == 1
        assert taint.relevant_bytes_for(sites[0]) == frozenset({2})

    def test_tainted_branches_recorded(self):
        program = _program("if (input(1) > 3) { x = 1; } buf = alloc(input(1));")
        taint = TaintInterpreter(program).run_taint(bytes([0, 9]))
        assert len(taint.tainted_branch_labels) == 1

    def test_constant_branches_not_recorded(self):
        program = _program("if (3 > 2) { x = 1; } buf = alloc(input(0));")
        taint = TaintInterpreter(program).run_taint(bytes([1]))
        assert taint.tainted_branch_labels == {}


class TestConcolicInterpreter:
    def test_size_expression_over_input_bytes(self):
        program = _program("w = input(0) + 3; buf = alloc(w * 2);")
        report = ConcolicInterpreter(program).run_concolic(bytes([5]))
        allocation = report.allocations[0]
        assert allocation.requested_size == 16
        assert allocation.size_expression is not None
        assert evaluate(allocation.size_expression, {"inp[0]": 5}) == 16
        assert evaluate(allocation.size_expression, {"inp[0]": 200}) == (203 * 2) % (1 << 32)

    def test_restriction_to_relevant_bytes(self):
        program = _program("a = input(0); b = input(1); buf = alloc(a + b);")
        report = ConcolicInterpreter(program, relevant_bytes={0}).run_concolic(bytes([2, 3]))
        expression = report.allocations[0].size_expression
        names = {str(v.name) for v in expression.variables()}
        assert names == {"inp[0]"}

    def test_branch_conditions_oriented_along_taken_path(self):
        program = _program("if (input(0) > 5) { x = 1; } else { x = 2; }")
        taken = ConcolicInterpreter(program).run_concolic(bytes([9]))
        not_taken = ConcolicInterpreter(program).run_concolic(bytes([1]))
        taken_cond = taken.branches[0].condition
        not_taken_cond = not_taken.branches[0].condition
        assert evaluate(taken_cond, {"inp[0]": 9}) == 1
        assert evaluate(taken_cond, {"inp[0]": 1}) == 0
        assert evaluate(not_taken_cond, {"inp[0]": 1}) == 1
        assert evaluate(not_taken_cond, {"inp[0]": 9}) == 0

    def test_untainted_branches_have_no_condition(self):
        program = _program("if (1 < 2) { x = 1; } buf = alloc(input(0));")
        report = ConcolicInterpreter(program).run_concolic(bytes([3]))
        # The constant branch is observed concretely but carries no symbolic
        # condition, so it never appears among the symbolic branches.
        assert report.execution.branches[0].condition is None
        assert len(report.symbolic_branches()) == 0

    def test_field_map_produces_field_variables(self):
        program = _program(
            "w = (input(0) << 8) | input(1); buf = alloc(w * 4);"
        )
        field_map = {0: ("/hdr/w", 16, 8), 1: ("/hdr/w", 16, 0)}
        report = ConcolicInterpreter(program, field_map=field_map).run_concolic(
            bytes([1, 0])
        )
        expression = report.allocations[0].size_expression
        names = {str(v.name) for v in expression.variables()}
        assert names == {"/hdr/w"}
        assert evaluate(expression, {"/hdr/w": 256}) == 1024

    def test_input_variable_name_roundtrip(self):
        assert input_variable_offset(str(input_byte_variable(17).name)) == 17
        assert input_variable_offset("other") is None

    def test_abs_and_signed_comparison_symbolics(self):
        program = _program(
            "v = input(0) * input(1); if (abs(v) > 100) { x = 1; } buf = alloc(v);"
        )
        report = ConcolicInterpreter(program).run_concolic(bytes([20, 20]))
        condition = report.branches[0].condition
        assert condition is not None
        assert evaluate(condition, {"inp[0]": 20, "inp[1]": 20}) == 1


class TestOverflowWitness:
    def test_wrapping_allocation_flagged(self):
        program = _program("w = input(0) * 16777216; buf = alloc(w * 256);")
        report = OverflowWitnessInterpreter(program).run_witness(bytes([255]))
        assert report.overflowed_allocations
        assert report.site_overflowed(report.overflowed_allocations[0].site_label)

    def test_non_wrapping_allocation_not_flagged(self):
        program = _program("w = input(0) * 4; buf = alloc(w + 1);")
        report = OverflowWitnessInterpreter(program).run_witness(bytes([200]))
        assert report.overflowed_allocations == []

    def test_wrap_in_unrelated_computation_not_flagged(self):
        program = _program(
            "noise = 4000000000 + 4000000000; buf = alloc(input(0) + 1);"
        )
        report = OverflowWitnessInterpreter(program).run_witness(bytes([5]))
        assert report.overflowed_allocations == []

    def test_subtraction_underflow_flagged(self):
        program = _program("w = input(0) - 10; buf = alloc(w);")
        report = OverflowWitnessInterpreter(program).run_witness(bytes([3]))
        assert len(report.overflowed_allocations) == 1

    def test_provenance_names_the_wrapping_operators(self):
        program = _program(
            "w = input(0) * 16777216; v = w * 256 + 5; buf = alloc(v);"
        )
        report = OverflowWitnessInterpreter(program).run_witness(bytes([255]))
        assert len(report.overflowed_allocations) == 1
        record = report.overflowed_allocations[0]
        # The multiply wrapped; the add of 5 to the (wrapped-to-zero) value
        # did not wrap again, so it carries the flag but adds no provenance.
        assert record.provenance == ("mul",)
        assert report.site_provenance(record.site_label) == ("mul",)

    def test_provenance_accumulates_distinct_operators(self):
        program = _program(
            "a = input(0) * 33554432; b = a + 4026531840; buf = alloc(a + b);"
        )
        report = OverflowWitnessInterpreter(program).run_witness(bytes([255]))
        assert report.overflowed_allocations
        provenance = report.site_provenance(
            report.overflowed_allocations[0].site_label
        )
        assert "mul" in provenance
        assert provenance == tuple(sorted(provenance))

    def test_site_provenance_empty_for_clean_site(self):
        program = _program("buf = alloc(input(0) + 1);")
        report = OverflowWitnessInterpreter(program).run_witness(bytes([5]))
        assert report.site_provenance(0) == ()

    def test_overflowed_site_labels_deduplicates_in_first_seen_order(self):
        program = _program(
            "i = 0; while (i < 3) {"
            " buf = alloc(input(0) * 16777216 * 256);"
            " buf2 = alloc(input(0) * 33554432 * 128);"
            " i = i + 1; }"
        )
        report = OverflowWitnessInterpreter(program).run_witness(bytes([255]))
        labels = report.overflowed_site_labels()
        # Two distinct sites, each overflowed three times: deduplicated,
        # first-dynamic-execution order preserved.
        assert len(report.overflowed_allocations) == 6
        assert len(labels) == 2
        assert labels == sorted(set(labels), key=labels.index)
        first_seen = [r.site_label for r in report.overflowed_allocations]
        assert labels == list(dict.fromkeys(first_seen))
