"""The live event stream: wires, sinks, lifecycle, and backend parity.

Mirrors ``test_metrics.py``'s discipline for the event-count wire dicts:
merge must be commutative and associative over arbitrary *asymmetric*
key sets (hypothesis-driven), and ``diff`` must report the union of both
key sets rather than silently dropping names.  On top of that sit the
sink semantics that keep counts exact across processes — ``emit`` counts
and dispatches, ``ingest`` dispatches without counting, ``merge`` counts
without dispatching — and the campaign-level contracts: the serial and
process backends agree on lifecycle-event counts for a cache-free
workload, and the ablation switch (``events=False``) changes no
classification.
"""

from __future__ import annotations

import glob
import json
import os
import queue

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.campaign import CampaignConfig, run_campaign
from repro.obs.events import (
    EVENT_SCHEMA_VERSION,
    EVENTS_WIRE_VERSION,
    LIFECYCLE_EVENTS,
    STREAMED_EVENTS,
    EventStream,
    InFlightTable,
    JsonlEventSink,
    QueueSink,
    RingBufferSink,
    diff_event_wires,
    event_count,
    merge_event_wires,
    unit_lifecycle,
    validate_event_record,
)
from repro.obs import events as ev
from repro.obs.report import load_events_dir

# ----------------------------------------------------------------------
# Wire strategies: small name pools force asymmetric key overlaps.
# ----------------------------------------------------------------------
_NAMES = st.sampled_from(
    ["unit.started", "unit.finished", "cache.hit", "cache.miss", "x"]
)

_WIRE = st.dictionaries(
    _NAMES, st.integers(min_value=0, max_value=10**9), max_size=5
).map(lambda events: {"v": EVENTS_WIRE_VERSION, "events": events})


def _counts(wire: dict) -> dict:
    """Drop zero-count noise so structurally-equal wires compare equal."""
    return {name: count for name, count in wire["events"].items() if count}


class TestWireProperties:
    @settings(max_examples=200, deadline=None)
    @given(a=_WIRE, b=_WIRE)
    def test_merge_is_commutative(self, a, b):
        assert _counts(merge_event_wires(a, b)) == _counts(
            merge_event_wires(b, a)
        )

    @settings(max_examples=200, deadline=None)
    @given(a=_WIRE, b=_WIRE, c=_WIRE)
    def test_merge_is_associative(self, a, b, c):
        left = merge_event_wires(merge_event_wires(a, b), c)
        right = merge_event_wires(a, merge_event_wires(b, c))
        assert _counts(left) == _counts(right)

    @settings(max_examples=100, deadline=None)
    @given(a=_WIRE)
    def test_merge_with_empty_is_identity(self, a):
        empty = {"v": EVENTS_WIRE_VERSION, "events": {}}
        assert _counts(merge_event_wires(a, empty)) == _counts(
            merge_event_wires(a)
        )

    @settings(max_examples=200, deadline=None)
    @given(mark=_WIRE, delta=_WIRE)
    def test_diff_inverts_merge(self, mark, delta):
        """(mark + delta) - mark == delta, over asymmetric key sets."""
        current = merge_event_wires(mark, delta)
        recovered = diff_event_wires(mark, current)
        assert _counts(recovered) == _counts(delta)

    @settings(max_examples=100, deadline=None)
    @given(a=_WIRE, b=_WIRE)
    def test_stream_merge_equals_pure_merge(self, a, b):
        stream = EventStream()
        stream.merge(a)
        stream.merge(b)
        assert _counts(stream.snapshot()) == _counts(merge_event_wires(a, b))

    def test_diff_reports_union_of_key_sets(self):
        mark = {"v": EVENTS_WIRE_VERSION, "events": {"only.in.mark": 3}}
        current = {"v": EVENTS_WIRE_VERSION, "events": {"only.in.current": 2}}
        delta = diff_event_wires(mark, current)
        # Never silently dropped — the key appears (at its negation).
        assert delta["events"] == {"only.in.current": 2, "only.in.mark": -3}

    def test_unknown_wire_version_is_dropped(self):
        good = {"v": EVENTS_WIRE_VERSION, "events": {"a": 3}}
        bad = {"v": 999, "events": {"a": 5}}
        assert event_count(merge_event_wires(good, bad), "a") == 3
        stream = EventStream()
        assert stream.merge(bad) == 0
        assert stream.merge(good) == 1

    def test_event_count_tolerates_junk(self):
        assert event_count(None, "a") == 0
        assert event_count({}, "a") == 0
        assert event_count({"v": 1, "events": {"a": "nope"}}, "a") == 0


class TestValidateRecord:
    def _record(self, **overrides):
        record = {
            "v": EVENT_SCHEMA_VERSION,
            "name": "unit.started",
            "seq": 1,
            "pid": 10,
            "tid": 20,
            "wall": 1.5,
            "attrs": {"application": "dillo"},
        }
        record.update(overrides)
        return record

    def test_accepts_well_formed_records(self):
        assert validate_event_record(self._record()) == []

    def test_rejects_malformed_records(self):
        assert validate_event_record("not a dict")
        assert validate_event_record({})
        assert validate_event_record(self._record(v=999))
        assert validate_event_record(self._record(name=""))
        assert validate_event_record(self._record(seq="one"))
        assert validate_event_record(self._record(wall="now"))
        assert validate_event_record(self._record(attrs=[1]))
        assert validate_event_record(self._record(attrs={"x": [1]}))


class TestStream:
    def test_emit_counts_and_dispatches(self):
        stream = EventStream()
        sink = RingBufferSink()
        stream.add_sink(sink)
        stream.emit("unit.started", application="dillo", site="s")
        stream.emit("unit.started", application="dillo", site="t")
        assert event_count(stream.snapshot(), "unit.started") == 2
        records = sink.records()
        assert [r["name"] for r in records] == ["unit.started"] * 2
        assert all(validate_event_record(r) == [] for r in records)
        assert records[0]["attrs"]["site"] == "s"

    def test_disabled_stream_is_a_no_op(self):
        stream = EventStream()
        sink = RingBufferSink()
        stream.add_sink(sink)
        stream.enabled = False
        stream.emit("unit.started")
        stream.ingest(
            {"v": EVENT_SCHEMA_VERSION, "name": "unit.started", "seq": 1,
             "pid": 1, "tid": 1, "wall": 0.0, "attrs": {}}
        )
        assert stream.snapshot()["events"] == {}
        assert sink.records() == []

    def test_ingest_dispatches_without_counting(self):
        stream = EventStream()
        sink = RingBufferSink()
        stream.add_sink(sink)
        stream.ingest(
            {"v": EVENT_SCHEMA_VERSION, "name": "unit.started", "seq": 1,
             "pid": 99, "tid": 1, "wall": 0.0, "attrs": {}}
        )
        # The producing process already counted it; counting here too
        # would double every streamed event once the delta merges in.
        assert event_count(stream.snapshot(), "unit.started") == 0
        assert len(sink.records()) == 1

    def test_ingest_skips_invalid_records_and_local_sinks(self, tmp_path):
        stream = EventStream()
        ring = RingBufferSink()
        jsonl = JsonlEventSink(str(tmp_path / "trace"))
        stream.add_sink(ring)
        stream.add_sink(jsonl)
        stream.ingest({"v": 999, "name": "unit.started"})
        assert ring.records() == []
        stream.ingest(
            {"v": EVENT_SCHEMA_VERSION, "name": "unit.started", "seq": 1,
             "pid": 99, "tid": 1, "wall": 0.0, "attrs": {}}
        )
        # The remote producer's own JSONL file is the durable copy.
        assert len(ring.records()) == 1
        assert not os.path.exists(jsonl.path())

    def test_merge_counts_without_dispatching(self):
        stream = EventStream()
        sink = RingBufferSink()
        stream.add_sink(sink)
        stream.merge({"v": EVENTS_WIRE_VERSION, "events": {"cache.hit": 7}})
        assert event_count(stream.snapshot(), "cache.hit") == 7
        assert sink.records() == []

    def test_broken_sink_is_detached_not_fatal(self):
        class Exploding:
            def emit(self, record):
                raise OSError("disk full")

        stream = EventStream()
        good = RingBufferSink()
        stream.add_sink(Exploding())
        stream.add_sink(good)
        stream.emit("unit.started")
        assert [r["name"] for r in good.records()] == ["unit.started"]
        assert len(stream._sinks) == 1

    def test_delta_counts_this_span_only(self):
        stream = EventStream()
        stream.emit("cache.hit")
        mark = stream.snapshot()
        stream.emit("cache.hit")
        stream.emit("cache.miss")
        delta = stream.delta(mark)
        assert event_count(delta, "cache.hit") == 1
        assert event_count(delta, "cache.miss") == 1


class TestSinks:
    def test_ring_buffer_is_bounded(self):
        sink = RingBufferSink(capacity=3)
        for seq in range(10):
            sink.emit({"seq": seq})
        assert [r["seq"] for r in sink.records()] == [7, 8, 9]

    def test_jsonl_sink_round_trips_through_loader(self, tmp_path):
        trace_dir = str(tmp_path / "trace")
        stream = EventStream()
        sink = JsonlEventSink(trace_dir)
        stream.add_sink(sink)
        stream.emit("unit.started", application="dillo", site="s")
        stream.emit("unit.finished", application="dillo", site="s", seconds=0.5)
        sink.close()
        data = load_events_dir(trace_dir)
        assert data.error is None
        assert data.invalid_records == 0
        assert [r["name"] for r in data.records] == [
            "unit.started", "unit.finished",
        ]

    def test_jsonl_sink_lazy_open_leaves_no_file(self, tmp_path):
        sink = JsonlEventSink(str(tmp_path / "trace"))
        sink.close()
        assert not os.path.exists(sink.path())

    def test_queue_sink_forwards_streaming_names_only(self):
        side = queue.Queue()
        stream = EventStream()
        stream.add_sink(QueueSink(side))
        stream.emit("unit.started", application="a", site="s")
        stream.emit("cache.hit")  # high-rate: counts-delta only, no queue RPC
        stream.emit("worker.up")
        names = []
        while not side.empty():
            names.append(side.get_nowait()["name"])
        assert names == ["unit.started", "worker.up"]
        # Both still counted locally regardless of queue eligibility.
        assert event_count(stream.snapshot(), "cache.hit") == 1

    def test_streamed_set_is_low_rate_lifecycle_only(self):
        assert set(LIFECYCLE_EVENTS) <= STREAMED_EVENTS
        assert "cache.hit" not in STREAMED_EVENTS
        assert "store.lock_wait" not in STREAMED_EVENTS


class TestUnitLifecycle:
    def test_success_emits_started_then_finished(self):
        sink = RingBufferSink()
        ev.EVENTS.add_sink(sink)
        try:
            with unit_lifecycle("dillo", "png.c@203", "serial") as extra:
                extra["classification"] = "overflow"
        finally:
            ev.EVENTS.remove_sink(sink)
        records = [r for r in sink.records() if r["name"].startswith("unit.")]
        assert [r["name"] for r in records] == ["unit.started", "unit.finished"]
        finished = records[-1]["attrs"]
        assert finished["classification"] == "overflow"
        assert finished["seconds"] >= 0.0
        assert finished["application"] == "dillo"

    def test_failure_emits_failed_and_reraises(self):
        sink = RingBufferSink()
        ev.EVENTS.add_sink(sink)
        try:
            with pytest.raises(RuntimeError):
                with unit_lifecycle("dillo", "s", "serial"):
                    raise RuntimeError("unit blew up")
        finally:
            ev.EVENTS.remove_sink(sink)
        records = [r for r in sink.records() if r["name"].startswith("unit.")]
        assert [r["name"] for r in records] == ["unit.started", "unit.failed"]
        assert records[-1]["attrs"]["error"] == "RuntimeError"

    def test_inflight_table_registers_for_the_duration(self):
        table = InFlightTable()
        table.begin("a::s", {"application": "a", "site": "s"})
        assert len(table) == 1
        [(key, started, attrs)] = table.snapshot()
        assert key == "a::s" and attrs["site"] == "s" and started > 0
        table.end("a::s")
        assert len(table) == 0 and table.snapshot() == []


# ----------------------------------------------------------------------
# Campaign-level contracts
# ----------------------------------------------------------------------
_APPS = ["dillo"]


def _run(backend="serial", jobs=1, **overrides):
    return run_campaign(
        CampaignConfig(
            applications=_APPS, backend=backend, jobs=jobs, **overrides
        )
    )


def _lifecycle_counts(result):
    return {
        name: event_count(result.events, name) for name in LIFECYCLE_EVENTS
    }


class TestCampaignEvents:
    def test_events_ablation_changes_no_classification(self):
        with_events = _run(events=True)
        without = _run(events=False)
        assert with_events.classifications() == without.classifications()
        assert without.events is None
        assert with_events.events is not None

    def test_serial_lifecycle_counts_close(self):
        result = _run()
        counts = _lifecycle_counts(result)
        assert counts["unit.queued"] == result.unit_count
        assert counts["unit.started"] == result.unit_count
        assert counts["unit.finished"] == result.unit_count
        assert counts["unit.failed"] == 0

    def test_serial_process_lifecycle_parity_without_cache(self):
        serial = _run(use_cache=False)
        process = _run(backend="process", jobs=2, use_cache=False)
        assert serial.classifications() == process.classifications()
        # The schedule-independent subset only: heartbeat/worker counts
        # legitimately depend on timing and topology.
        assert _lifecycle_counts(serial) == _lifecycle_counts(process)

    def test_process_run_reports_worker_lifecycle(self):
        result = _run(backend="process", jobs=2, use_cache=False)
        assert event_count(result.events, "worker.up") >= 1
        assert event_count(result.events, "worker.up") == event_count(
            result.events, "worker.down"
        )

    def test_event_jsonl_lands_beside_spans(self, tmp_path):
        trace_dir = str(tmp_path / "trace")
        result = _run(trace_dir=trace_dir)
        data = load_events_dir(trace_dir)
        assert data.error is None
        assert data.invalid_records == 0
        started = [r for r in data.records if r["name"] == "unit.started"]
        assert len(started) == result.unit_count

    def test_worker_event_files_hold_only_their_own_records(self, tmp_path):
        """Fork-started workers must not write into the parent's file.

        A forked worker inherits the parent's sink list with its open
        handle; without clearing it, every worker record lands twice —
        once in the worker's events-<pid>.jsonl and once in the parent's.
        """
        trace_dir = str(tmp_path / "trace")
        result = _run(backend="process", jobs=2, use_cache=False,
                      trace_dir=trace_dir)
        data = load_events_dir(trace_dir)
        for record in data.records:
            assert f"events-{record['pid']}.jsonl" in [
                os.path.basename(p)
                for p in glob.glob(os.path.join(trace_dir, "events-*.jsonl"))
            ]
        by_file = {}
        for path in glob.glob(os.path.join(trace_dir, "events-*.jsonl")):
            own = int(os.path.basename(path)[len("events-"):-len(".jsonl")])
            with open(path, "r", encoding="utf-8") as handle:
                pids = {json.loads(line)["pid"] for line in handle}
            by_file[own] = pids
            assert pids == {own}, f"{path} holds foreign-pid records: {pids}"
        # And nothing was lost: the files cover every finished unit once.
        finished = [r for r in data.records if r["name"] == "unit.finished"]
        assert len(finished) == result.unit_count

    def test_progress_without_events_is_rejected(self):
        with pytest.raises(ValueError):
            _run(events=False, progress=True)
        with pytest.raises(ValueError):
            _run(events=False, watchdog=True)
