"""The metrics registry: wire snapshots, deltas, and lossless merging.

The load-bearing property is that :func:`merge_snapshots` is commutative
and associative — the process backend's parent folds worker deltas in
arrival order, and the totals must not depend on which worker finished
first.  Hypothesis drives that over generated wire dicts; everything is
stored as integers (counts, nanoseconds, bucket indices) precisely so the
property holds exactly rather than approximately.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.metrics import (
    BUCKET_BOUNDS,
    METRICS_WIRE_VERSION,
    MetricsRegistry,
    bucket_index,
    counter_value,
    diff_snapshots,
    histogram_stats,
    merge_snapshots,
    seconds_to_nanos,
)

# ----------------------------------------------------------------------
# Wire-dict strategies
# ----------------------------------------------------------------------
_NAMES = st.sampled_from(
    ["solver.queries", "store.loads", "stage.solve.seconds", "sched.wait", "x"]
)

_COUNTER = st.fixed_dictionaries(
    {"k": st.just("c"), "value": st.integers(min_value=0, max_value=10**9)}
)
_GAUGE = st.fixed_dictionaries(
    {"k": st.just("g"), "value": st.integers(min_value=0, max_value=10**9)}
)
_HISTOGRAM = st.fixed_dictionaries(
    {
        "k": st.just("h"),
        "count": st.integers(min_value=0, max_value=10**6),
        "sum": st.integers(min_value=0, max_value=10**15),
        "buckets": st.dictionaries(
            st.integers(min_value=0, max_value=len(BUCKET_BOUNDS)).map(str),
            st.integers(min_value=1, max_value=10**6),
            max_size=4,
        ),
    }
)

_WIRE = st.dictionaries(_NAMES, st.one_of(_COUNTER, _GAUGE, _HISTOGRAM), max_size=5).map(
    lambda metrics: {"v": METRICS_WIRE_VERSION, "metrics": metrics}
)


def _normalized(wire: dict) -> dict:
    """Drop empty-bucket noise so structurally-equal wires compare equal."""
    out = {}
    for name, entry in wire["metrics"].items():
        entry = dict(entry)
        if entry.get("k") == "h":
            entry["buckets"] = {
                k: v for k, v in sorted(entry.get("buckets", {}).items()) if v
            }
        out[name] = entry
    return out


class TestMergeProperties:
    @settings(max_examples=200, deadline=None)
    @given(a=_WIRE, b=_WIRE)
    def test_merge_is_commutative(self, a, b):
        # Same-name entries with different kinds are the one case merge
        # resolves by first-seen kind; restrict to kind-consistent pairs.
        for name in set(a["metrics"]) & set(b["metrics"]):
            if a["metrics"][name]["k"] != b["metrics"][name]["k"]:
                del b["metrics"][name]
        assert _normalized(merge_snapshots(a, b)) == _normalized(
            merge_snapshots(b, a)
        )

    @settings(max_examples=200, deadline=None)
    @given(a=_WIRE, b=_WIRE, c=_WIRE)
    def test_merge_is_associative(self, a, b, c):
        kinds = {}
        for wire in (a, b, c):
            for name in list(wire["metrics"]):
                kind = wire["metrics"][name]["k"]
                if kinds.setdefault(name, kind) != kind:
                    del wire["metrics"][name]
        left = merge_snapshots(merge_snapshots(a, b), c)
        right = merge_snapshots(a, merge_snapshots(b, c))
        assert _normalized(left) == _normalized(right)

    @settings(max_examples=100, deadline=None)
    @given(a=_WIRE)
    def test_merge_with_empty_is_identity_for_counters_and_histograms(self, a):
        empty = {"v": METRICS_WIRE_VERSION, "metrics": {}}
        assert _normalized(merge_snapshots(a, empty)) == _normalized(
            merge_snapshots(a)
        )

    @settings(max_examples=100, deadline=None)
    @given(mark=_WIRE, delta=_WIRE)
    def test_counter_diff_inverts_merge(self, mark, delta):
        """mark + delta - mark == delta for every counter-kind metric."""
        for name in set(mark["metrics"]) & set(delta["metrics"]):
            if mark["metrics"][name]["k"] != delta["metrics"][name]["k"]:
                del delta["metrics"][name]
        current = merge_snapshots(mark, delta)
        # Gauges merge by max, so only counters/histograms invert exactly.
        recovered = diff_snapshots(mark, current)
        for name, entry in delta["metrics"].items():
            if entry["k"] == "c":
                assert counter_value(recovered, name) == entry["value"]

    def test_unknown_wire_version_is_dropped(self):
        good = {"v": METRICS_WIRE_VERSION, "metrics": {"a": {"k": "c", "value": 3}}}
        bad = {"v": 999, "metrics": {"a": {"k": "c", "value": 5}}}
        merged = merge_snapshots(good, bad)
        assert counter_value(merged, "a") == 3


class TestBuckets:
    def test_bounds_are_strictly_increasing_powers_of_two(self):
        assert all(b == 1 << (10 + i) for i, b in enumerate(BUCKET_BOUNDS))

    def test_bucket_index_matches_linear_scan(self):
        for nanos in [0, 1, 1023, 1024, 1025, 10**6, 10**9, BUCKET_BOUNDS[-1], BUCKET_BOUNDS[-1] + 1]:
            linear = next(
                (i for i, bound in enumerate(BUCKET_BOUNDS) if nanos <= bound),
                len(BUCKET_BOUNDS),
            )
            assert bucket_index(nanos) == linear

    def test_seconds_quantization_clamps_negatives(self):
        assert seconds_to_nanos(-1.0) == 0
        assert seconds_to_nanos(1.5) == 1_500_000_000


class TestRegistry:
    def test_kind_is_stable_per_name(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        with pytest.raises(TypeError):
            registry.gauge("a")
        with pytest.raises(TypeError):
            registry.histogram("a")

    def test_delta_zeroes_keys_absent_from_current(self):
        registry = MetricsRegistry()
        registry.counter("only.in.mark").inc(7)
        mark = registry.snapshot()
        other = MetricsRegistry()
        other.counter("only.in.current").inc(2)
        delta = diff_snapshots(mark, other.snapshot())
        assert counter_value(delta, "only.in.mark") == 0
        assert "only.in.mark" in delta["metrics"]  # never silently dropped
        assert counter_value(delta, "only.in.current") == 2

    def test_gauge_delta_carries_level_and_merge_takes_max(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(5)
        mark = registry.snapshot()
        registry.gauge("g").set(3)
        delta = registry.delta(mark)
        assert delta["metrics"]["g"]["value"] == 3
        registry.merge({"v": METRICS_WIRE_VERSION, "metrics": {"g": {"k": "g", "value": 9}}})
        assert registry.gauge("g").value == 9

    def test_histogram_observe_roundtrips_through_wire(self):
        registry = MetricsRegistry()
        registry.histogram("h").observe(0.001)
        registry.histogram("h").observe(0.002)
        count, total = histogram_stats(registry.snapshot(), "h")
        assert count == 2
        assert total == pytest.approx(0.003, abs=1e-6)

    def test_merge_registry_equals_pure_merge(self):
        a = MetricsRegistry()
        a.counter("c").inc(4)
        a.histogram("h").observe(0.5)
        b = MetricsRegistry()
        b.counter("c").inc(6)
        b.histogram("h").observe(0.25)
        target = MetricsRegistry()
        target.merge(a.snapshot())
        target.merge(b.snapshot())
        assert _normalized(target.snapshot()) == _normalized(
            merge_snapshots(a.snapshot(), b.snapshot())
        )

    def test_concurrent_increments_are_not_lost(self):
        registry = MetricsRegistry()

        def worker():
            for _ in range(1000):
                registry.counter("n").inc()
                registry.histogram("h").observe(1e-6)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter("n").value == 8000
        assert registry.histogram("h").count == 8000
