"""Bench history records and the bench-diff regression comparison.

The CI gate hangs off :func:`compare_runs`, so the threshold semantics
are pinned down here: direction decides which way a metric may drift,
ratio and absolute slack combine by taking the *more permissive* bound
(a near-zero baseline must not be held to a ratio of nothing), and a
metric absent from either payload is skipped rather than failed — a
baseline committed before a metric existed must not doom every future
run.  The history file follows the repository's JSONL discipline:
versioned records, attribution stamped on append, bad lines skipped.
"""

from __future__ import annotations

import json

import repro
from repro.obs.benchhist import (
    DEFAULT_THRESHOLDS,
    HISTORY_VERSION,
    Threshold,
    append_history,
    compare_runs,
    history_path,
    load_history,
    metric_value,
)


class TestThreshold:
    def test_higher_direction_regresses_by_falling(self):
        threshold = Threshold(direction="higher", ratio=0.75)
        assert not threshold.is_regression(2.0, 2.5)
        assert not threshold.is_regression(2.0, 1.5)  # exactly the bound
        assert threshold.is_regression(2.0, 1.49)

    def test_lower_direction_regresses_by_rising(self):
        threshold = Threshold(direction="lower", ratio=1.0, absolute=0.3)
        assert not threshold.is_regression(1.0, 1.3)
        assert threshold.is_regression(1.0, 1.31)
        assert not threshold.is_regression(1.0, 0.5)

    def test_more_permissive_bound_wins(self):
        # Near-zero baseline: absolute slack dominates the ratio.
        threshold = Threshold(direction="lower", ratio=2.0, absolute=0.5)
        assert threshold.worst_acceptable(0.0) == 0.5
        # Large baseline: the ratio dominates.
        assert threshold.worst_acceptable(10.0) == 20.5

    def test_zero_tolerance_holds_exactly(self):
        threshold = Threshold(direction="lower", ratio=1.0, absolute=0.0)
        assert not threshold.is_regression(0, 0)
        assert threshold.is_regression(0, 1)


class TestMetricValue:
    def test_resolves_dotted_paths(self):
        payload = {"store": {"warm_speedup": 2.5}, "overhead": 1.1}
        assert metric_value(payload, "overhead") == 1.1
        assert metric_value(payload, "store.warm_speedup") == 2.5

    def test_missing_or_non_numeric_is_none(self):
        payload = {"store": {"warm_speedup": "fast"}, "ok": True}
        assert metric_value(payload, "store.missing") is None
        assert metric_value(payload, "store.warm_speedup.deeper") is None
        assert metric_value(payload, "store.warm_speedup") is None
        assert metric_value(payload, "ok") is None  # bools are not metrics


class TestCompareRuns:
    _BASE = {"benchmark": "observability", "overhead": 1.0,
             "weighted_stage_coverage": 0.95, "invalid_event_records": 0}

    def test_identical_payloads_show_no_regression(self):
        assert compare_runs(self._BASE, dict(self._BASE)) == []

    def test_regressions_are_reported_with_bounds(self):
        current = dict(self._BASE, overhead=1.9, invalid_event_records=3)
        regressions = compare_runs(self._BASE, current)
        by_metric = {r.metric: r for r in regressions}
        assert set(by_metric) == {"overhead", "invalid_event_records"}
        assert by_metric["overhead"].baseline == 1.0
        assert by_metric["overhead"].current == 1.9
        assert "rose" in by_metric["overhead"].describe()

    def test_thresholds_default_from_benchmark_name(self):
        # The campaign benchmark's speedup floor: 0.75 of baseline.
        base = {"benchmark": "campaign", "speedup": 2.0}
        assert compare_runs(base, {"speedup": 1.6}) == []
        [regression] = compare_runs(base, {"speedup": 1.4})
        assert regression.metric == "speedup"
        assert "fell" in regression.describe()

    def test_metric_absent_from_either_side_is_skipped(self):
        base = {"benchmark": "observability", "overhead": 1.0}
        assert compare_runs(base, {"weighted_stage_coverage": 0.1}) == []

    def test_all_default_thresholds_are_well_formed(self):
        for benchmark, thresholds in DEFAULT_THRESHOLDS.items():
            for metric, threshold in thresholds.items():
                assert threshold.direction in ("higher", "lower"), (
                    benchmark, metric,
                )
                # Wall-clock seconds are machine-dependent; gating them
                # against a committed baseline is forbidden by design.
                assert "seconds" not in metric


class TestHistoryFile:
    def test_append_and_load_round_trip(self, tmp_path):
        payload = {"benchmark": "observability", "overhead": 1.08}
        path = append_history(payload, "BENCH_observability.json",
                              str(tmp_path))
        assert path == history_path(str(tmp_path))
        [record] = load_history(path)
        assert record["v"] == HISTORY_VERSION
        assert record["benchmark"] == "observability"
        assert record["artifact"] == "BENCH_observability.json"
        assert record["payload"] == payload
        assert record["unix_time"] > 0
        # Attribution: every point in the trajectory names its code.
        assert record["repro_version"] == repro.__version__
        assert "git" in record

    def test_appends_accumulate_oldest_first(self, tmp_path):
        for overhead in (1.0, 1.1, 1.2):
            append_history({"benchmark": "observability",
                            "overhead": overhead}, "a.json", str(tmp_path))
        records = load_history(history_path(str(tmp_path)))
        assert [r["payload"]["overhead"] for r in records] == [1.0, 1.1, 1.2]

    def test_benchmark_filter(self, tmp_path):
        append_history({"benchmark": "campaign"}, "a.json", str(tmp_path))
        append_history({"benchmark": "observability"}, "b.json", str(tmp_path))
        records = load_history(
            history_path(str(tmp_path)), benchmark="observability"
        )
        assert [r["benchmark"] for r in records] == ["observability"]

    def test_bad_lines_and_unknown_versions_are_skipped(self, tmp_path):
        path = history_path(str(tmp_path))
        append_history({"benchmark": "campaign"}, "a.json", str(tmp_path))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("this is not json\n")
            handle.write(json.dumps({"v": 999, "benchmark": "campaign"}) + "\n")
            handle.write(json.dumps(["not", "an", "object"]) + "\n")
        records = load_history(path)
        assert len(records) == 1  # one bad line loses itself, not the file

    def test_missing_file_is_empty_not_fatal(self, tmp_path):
        assert load_history(str(tmp_path / "nope.jsonl")) == []
