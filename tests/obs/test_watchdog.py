"""The straggler watchdog, driven deterministically.

Every collaborator is injected — a private metrics registry holding a
synthetic ``stage.unit.seconds`` distribution, a private event stream,
a fake clock, and a list-capturing warn writer — so these tests never
sleep and never race the real ticker thread.  The acceptance property:
an injected slow unit is flagged exactly once (event + counter + warning
line) and its result is untouched; until ``min_samples`` completions
exist nothing is ever flagged.
"""

from __future__ import annotations

import time

from repro.core.campaign import CampaignConfig, run_campaign
from repro.obs.events import (
    EVENT_SCHEMA_VERSION,
    EventStream,
    RingBufferSink,
    event_count,
    unit_lifecycle,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.watchdog import StragglerWatchdog


def _primed_metrics(samples=10, seconds=0.01):
    """A registry whose unit histogram says units take ~``seconds``."""
    registry = MetricsRegistry()
    for _ in range(samples):
        registry.histogram("stage.unit.seconds").observe(seconds)
    return registry


def _watchdog(metrics=None, **overrides):
    defaults = dict(
        quantile=0.95,
        multiplier=4.0,
        min_seconds=0.0,
        min_samples=5,
        metrics=_primed_metrics() if metrics is None else metrics,
        stream=EventStream(),
        clock=lambda: 0.0,
    )
    defaults.update(overrides)
    warnings = []
    dog = StragglerWatchdog(warn=warnings.append, **defaults)
    return dog, warnings


def _started(application="dillo", site="png.c@203", pid=10, wall=100.0):
    return {
        "v": EVENT_SCHEMA_VERSION,
        "name": "unit.started",
        "seq": 1,
        "pid": pid,
        "tid": 1,
        "wall": wall,
        "attrs": {"application": application, "site": site},
    }


def _finished(record):
    return {**record, "name": "unit.finished", "seq": record["seq"] + 1}


class TestDeadline:
    def test_no_judgement_below_min_samples(self):
        dog, warnings = _watchdog(metrics=_primed_metrics(samples=3))
        assert dog.deadline_seconds() is None
        dog.emit(_started())
        assert dog.check(now=10**9) == 0
        assert warnings == []

    def test_deadline_scales_with_the_distribution(self):
        fast, _ = _watchdog(metrics=_primed_metrics(seconds=0.001))
        slow, _ = _watchdog(metrics=_primed_metrics(seconds=1.0))
        assert fast.deadline_seconds() < slow.deadline_seconds()
        # Quantile bound is a bucket *upper* bound: conservative, never
        # below the observed runtime itself.
        assert slow.deadline_seconds() >= slow.multiplier * 1.0

    def test_min_seconds_floor_applies(self):
        dog, _ = _watchdog(
            metrics=_primed_metrics(seconds=0.0001), min_seconds=5.0
        )
        assert dog.deadline_seconds() == 5.0


class TestFlagging:
    def test_overdue_unit_is_flagged_once(self):
        dog, warnings = _watchdog()
        sink = RingBufferSink()
        dog._stream.add_sink(sink)
        record = _started(wall=100.0)
        dog.emit(record)
        deadline = dog.deadline_seconds()

        assert dog.check(now=100.0 + deadline / 2) == 0
        assert dog.check(now=100.0 + deadline + 1.0) == 1
        # Flag-once: later passes stay quiet while the unit keeps running.
        assert dog.check(now=100.0 + deadline + 50.0) == 0

        assert dog._metrics.counter("campaign.stragglers").value == 1
        assert event_count(dog._stream.snapshot(), "unit.straggler") == 1
        [straggler] = sink.records()
        assert straggler["attrs"]["application"] == "dillo"
        assert straggler["attrs"]["deadline"] > 0
        assert straggler["attrs"]["elapsed"] > straggler["attrs"]["deadline"]
        assert warnings == [
            f"repro: straggler dillo::png.c@203 "
            f"({deadline + 1.0:.1f}s in flight, deadline {deadline:.1f}s)"
        ]

    def test_finished_unit_is_never_flagged(self):
        dog, warnings = _watchdog()
        record = _started()
        dog.emit(record)
        dog.emit(_finished(record))
        assert dog.check(now=10**9) == 0
        assert warnings == []

    def test_units_are_keyed_per_pid(self):
        dog, _ = _watchdog()
        dog.emit(_started(pid=10, wall=100.0))
        dog.emit(_started(pid=11, wall=100.0))
        # The same site on two workers is two in-flight entries; one
        # finishing must not clear the other.
        dog.emit(_finished(_started(pid=10, wall=100.0)))
        assert dog.check(now=10**9) == 1

    def test_non_lifecycle_records_are_ignored(self):
        dog, _ = _watchdog()
        dog.emit({**_started(), "name": "cache.hit"})
        dog.emit({**_started(), "attrs": {}})  # no unit identity
        assert dog.check(now=10**9) == 0


class TestPassivity:
    def test_flagged_unit_result_is_untouched(self):
        """The injected slow unit completes normally — detection only."""
        stream = EventStream()
        dog = StragglerWatchdog(
            multiplier=1.0,
            min_seconds=0.0,
            min_samples=5,
            metrics=_primed_metrics(seconds=0.0001),
            stream=stream,
            warn=lambda line: None,
        )
        stream.add_sink(dog)

        def slow_unit():
            with unit_lifecycle("dillo", "slow", "serial") as extra:
                # Mid-flight the watchdog deems this unit overdue...
                flagged = dog.check(now=time.time() + 1000.0)
                extra["classification"] = "overflow"
                return flagged, 41 + 1

        # unit_lifecycle emits through the global stream; mirror its
        # records into the private one the watchdog listens on.
        from repro.obs import events as ev

        class Mirror:
            ingest_remote = True

            def emit(self, record):
                stream.emit(record["name"], **record["attrs"])

        mirror = Mirror()
        ev.EVENTS.add_sink(mirror)
        try:
            flagged, answer = slow_unit()
        finally:
            ev.EVENTS.remove_sink(mirror)
        assert flagged == 1
        assert answer == 42  # the unit's own result is untouched
        assert event_count(stream.snapshot(), "unit.straggler") == 1
        # The lifecycle closed normally despite the flag.
        assert event_count(stream.snapshot(), "unit.finished") == 1
        assert event_count(stream.snapshot(), "unit.failed") == 0

    def test_campaign_watchdog_changes_no_classification(self):
        config = dict(applications=["dillo"], backend="serial")
        watched = run_campaign(CampaignConfig(watchdog=True, **config))
        plain = run_campaign(CampaignConfig(watchdog=False, **config))
        assert watched.classifications() == plain.classifications()
