"""Campaign-level observability invariants.

The hard contract: observability is passive.  Tracing on/off must not
change a single classification, and the process backend's wire-merged
counters must equal the serial reference when the workload is
schedule-independent (``use_cache=False`` — with a shared cache, hit
patterns legitimately depend on unit interleaving).
"""

from __future__ import annotations

from repro.core.campaign import CampaignConfig, run_campaign, telemetry_delta
from repro.obs.metrics import counter_value
from repro.obs.report import load_trace_dir, stage_summaries, unit_summaries

_APPS = ["dillo"]


def _run(backend="serial", jobs=1, trace_dir=None, use_cache=True):
    return run_campaign(
        CampaignConfig(
            applications=_APPS,
            backend=backend,
            jobs=jobs,
            use_cache=use_cache,
            trace_dir=trace_dir,
        )
    )


def _counters(result):
    return {
        name: entry["value"]
        for name, entry in result.metrics["metrics"].items()
        if entry["k"] == "c"
    }


class TestTracingIsPassive:
    def test_serial_classifications_identical_with_and_without_trace(self, tmp_path):
        plain = _run()
        traced = _run(trace_dir=str(tmp_path / "trace"))
        assert plain.classifications() == traced.classifications()

    def test_process_classifications_identical_with_and_without_trace(self, tmp_path):
        plain = _run(backend="process", jobs=2)
        traced = _run(backend="process", jobs=2, trace_dir=str(tmp_path / "trace"))
        assert plain.classifications() == traced.classifications()


class TestTraceContents:
    def test_serial_trace_covers_every_stage(self, tmp_path):
        trace_dir = str(tmp_path / "trace")
        result = _run(trace_dir=trace_dir)
        data = load_trace_dir(trace_dir)
        assert data.error is None
        assert data.invalid_records == 0
        names = {s.name for s in stage_summaries(data)}
        assert {"campaign", "parse", "taint", "unit", "concolic", "enforce",
                "solve"} <= names
        units = unit_summaries(data)
        assert len(units) == result.unit_count
        assert all(u.backend == "serial" for u in units)

    def test_process_trace_collects_worker_files(self, tmp_path):
        trace_dir = str(tmp_path / "trace")
        result = _run(backend="process", jobs=2, trace_dir=trace_dir)
        data = load_trace_dir(trace_dir)
        assert data.error is None
        # Parent writes campaign/parse spans; workers write unit spans.
        assert data.files >= 2
        units = unit_summaries(data)
        assert len(units) == result.unit_count
        assert all(u.backend == "process" for u in units)
        pids = {r["pid"] for r in data.records}
        assert len(pids) >= 2


class TestMetricsAggregation:
    def test_campaign_metrics_delta_counts_this_run_only(self):
        first = _run()
        second = _run()
        assert (
            counter_value(first.metrics, "campaign.units_completed")
            == counter_value(second.metrics, "campaign.units_completed")
            == first.unit_count
        )

    def test_process_counters_equal_serial_without_cache(self):
        serial = _run(use_cache=False)
        process = _run(backend="process", jobs=3, use_cache=False)
        assert serial.classifications() == process.classifications()
        assert _counters(serial) == _counters(process)

    def test_solver_telemetry_still_reported(self):
        result = _run()
        assert result.solver_telemetry is not None
        assert result.solver_telemetry["queries"] > 0
        assert counter_value(result.metrics, "solver.queries") == int(
            result.solver_telemetry["queries"]
        )


class TestTelemetryDelta:
    def test_tolerates_keys_only_in_final(self):
        delta = telemetry_delta({"queries": 3}, {"queries": 10, "new_counter": 4})
        assert delta == {"new_counter": 4, "queries": 7}

    def test_tolerates_keys_only_in_mark(self):
        delta = telemetry_delta({"queries": 3, "gone": 5}, {"queries": 10})
        assert delta == {"gone": -5, "queries": 7}

    def test_rounds_float_values(self):
        delta = telemetry_delta({"t": 0.1}, {"t": 0.30000001})
        assert delta == {"t": 0.2}
