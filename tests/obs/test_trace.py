"""Spans, sinks and the trace-directory reader.

Covers the tracer's nesting/attribute contract through both sinks, the
record schema validator the CI smoke job relies on, and the report
aggregations (stage summaries, unit rollups with direct-child-only
accounting, Chrome export).
"""

from __future__ import annotations

import json
import os

from repro.obs.metrics import METRICS
from repro.obs.report import (
    chrome_trace_events,
    load_trace_dir,
    stage_summaries,
    unit_summaries,
)
from repro.obs.trace import (
    TRACE_SCHEMA_VERSION,
    InMemorySink,
    JsonlSink,
    Tracer,
    ensure_trace_dir,
    validate_record,
)


def _traced(tracer_actions):
    """Run ``tracer_actions(tracer)`` against a fresh in-memory sink."""
    tracer = Tracer()
    sink = InMemorySink()
    tracer.add_sink(sink)
    tracer_actions(tracer)
    return sink.records


class TestTracer:
    def test_span_records_nesting_and_attributes(self):
        def actions(tracer):
            with tracer.span("unit", application="dillo", site="png.c@203"):
                with tracer.span("solve", session=True):
                    pass
                tracer.event("store.lock_break", path="/tmp/x")

        records = _traced(actions)
        assert [r["name"] for r in records] == ["solve", "store.lock_break", "unit"]
        solve, event, unit = records
        # Children close (and emit) before their parent, but link to it.
        assert solve["parent"] == unit["id"]
        assert event["parent"] == unit["id"]
        assert unit["parent"] is None
        assert unit["attrs"] == {"application": "dillo", "site": "png.c@203"}
        assert solve["attrs"] == {"session": True}
        assert all(not validate_record(r) for r in records)

    def test_sibling_spans_share_a_parent(self):
        def actions(tracer):
            with tracer.span("unit"):
                with tracer.span("concolic"):
                    pass
                with tracer.span("enforce"):
                    pass

        records = _traced(actions)
        unit = next(r for r in records if r["name"] == "unit")
        children = [r for r in records if r["name"] != "unit"]
        assert all(r["parent"] == unit["id"] for r in children)

    def test_no_sink_means_no_records_but_stage_timer_still_fires(self):
        tracer = Tracer()
        before = METRICS.histogram("stage.only_timer.seconds").count
        with tracer.span("only_timer"):
            pass
        assert METRICS.histogram("stage.only_timer.seconds").count == before + 1

    def test_span_survives_exceptions(self):
        def actions(tracer):
            try:
                with tracer.span("unit"):
                    raise RuntimeError("unit blew up")
            except RuntimeError:
                pass

        records = _traced(actions)
        assert [r["name"] for r in records] == ["unit"]

    def test_broken_sink_is_detached_not_fatal(self):
        class Exploding:
            def emit(self, record):
                raise OSError("disk full")

        tracer = Tracer()
        good = InMemorySink()
        tracer.add_sink(Exploding())
        tracer.add_sink(good)
        with tracer.span("unit"):
            pass
        assert [r["name"] for r in good.records] == ["unit"]
        assert len(tracer._sinks) == 1  # the exploding sink was dropped


class TestJsonlSink:
    def test_round_trip_through_trace_dir(self, tmp_path):
        trace_dir = str(tmp_path / "trace")
        tracer = Tracer()
        sink = JsonlSink(trace_dir)
        tracer.add_sink(sink)
        with tracer.span("unit", application="dillo", site="s", backend="serial"):
            with tracer.span("solve"):
                pass
        tracer.event("store.lock_break", path="x")
        tracer.remove_sink(sink)
        sink.close()

        data = load_trace_dir(trace_dir)
        assert data.error is None
        assert data.invalid_records == 0
        assert data.files == 1
        assert sorted(r["name"] for r in data.records) == [
            "solve",
            "store.lock_break",
            "unit",
        ]
        unit = next(r for r in data.records if r["name"] == "unit")
        assert unit["attrs"] == {
            "application": "dillo",
            "site": "s",
            "backend": "serial",
        }

    def test_lazy_open_leaves_no_file_when_nothing_emitted(self, tmp_path):
        trace_dir = str(tmp_path / "trace")
        sink = JsonlSink(trace_dir)
        sink.close()
        assert not os.path.exists(sink.path())

    def test_meta_is_versioned_and_attributed(self, tmp_path):
        trace_dir = str(tmp_path / "trace")
        ensure_trace_dir(trace_dir)
        with open(os.path.join(trace_dir, "meta.json")) as handle:
            meta = json.load(handle)
        # Readers key on format/version only; the attribution fields are
        # additive (hence no schema bump) and may be None off-checkout.
        assert meta["format"] == "repro-trace"
        assert meta["version"] == TRACE_SCHEMA_VERSION
        assert "repro_version" in meta and "git" in meta
        import repro

        assert meta["repro_version"] == repro.__version__


class TestValidateRecord:
    def test_rejects_malformed_records(self):
        assert validate_record("not a dict")
        assert validate_record({})
        assert validate_record(
            {"v": 999, "kind": "span", "name": "x", "id": 1, "pid": 1, "tid": 1,
             "wall": 0.0, "dur": 0.0}
        )
        # A span missing its duration is invalid; an event is not.
        base = {"v": TRACE_SCHEMA_VERSION, "name": "x", "id": 1, "parent": None,
                "pid": 1, "tid": 1, "wall": 0.0, "attrs": {}}
        assert validate_record({**base, "kind": "span"})
        assert not validate_record({**base, "kind": "event"})
        assert validate_record({**base, "kind": "span", "dur": 0.1, "attrs": {"x": [1]}})


class TestReader:
    def test_unknown_meta_version_is_an_error(self, tmp_path):
        trace_dir = tmp_path / "trace"
        trace_dir.mkdir()
        (trace_dir / "meta.json").write_text(
            json.dumps({"format": "repro-trace", "version": 999})
        )
        data = load_trace_dir(str(trace_dir))
        assert data.error is not None
        assert not data.records

    def test_bad_lines_are_counted_and_skipped(self, tmp_path):
        trace_dir = str(tmp_path / "trace")
        ensure_trace_dir(trace_dir)
        good = {"v": TRACE_SCHEMA_VERSION, "kind": "event", "name": "ok",
                "id": 1, "parent": None, "pid": 1, "tid": 1, "wall": 0.0,
                "attrs": {}}
        with open(os.path.join(trace_dir, "spans-1.jsonl"), "w") as handle:
            handle.write("this is not json\n")
            handle.write(json.dumps({"v": 999}) + "\n")
            handle.write(json.dumps(good) + "\n")
        data = load_trace_dir(trace_dir)
        assert data.invalid_records == 2
        assert [r["name"] for r in data.records] == ["ok"]


class TestAggregation:
    def _sample_trace(self, tmp_path):
        trace_dir = str(tmp_path / "trace")
        tracer = Tracer()
        sink = JsonlSink(trace_dir)
        tracer.add_sink(sink)
        for site in ("a", "b"):
            with tracer.span("unit", application="app", site=site, backend="serial"):
                with tracer.span("concolic"):
                    pass
                with tracer.span("enforce"):
                    # Grandchild: must not appear in the unit's direct stages.
                    with tracer.span("solve"):
                        pass
        sink.close()
        return load_trace_dir(trace_dir)

    def test_stage_summaries_counts(self, tmp_path):
        data = self._sample_trace(tmp_path)
        by_name = {s.name: s for s in stage_summaries(data)}
        assert by_name["unit"].count == 2
        assert by_name["concolic"].count == 2
        assert by_name["solve"].count == 2
        assert by_name["unit"].total_seconds >= by_name["concolic"].total_seconds

    def test_stage_summaries_sum_propagation_attrs(self, tmp_path):
        trace_dir = str(tmp_path / "trace")
        tracer = Tracer()
        sink = JsonlSink(trace_dir)
        tracer.add_sink(sink)
        for work in (100, 42):
            with tracer.span("solve", session=False) as span:
                span.attrs["propagations"] = work
        with tracer.span("enforce"):
            pass
        sink.close()
        by_name = {
            s.name: s for s in stage_summaries(load_trace_dir(trace_dir))
        }
        assert by_name["solve"].propagations == 142
        assert by_name["enforce"].propagations == 0
        assert by_name["solve"].as_dict()["propagations"] == 142

    def test_unit_summaries_roll_up_direct_children_only(self, tmp_path):
        data = self._sample_trace(tmp_path)
        units = unit_summaries(data)
        assert sorted(u.site for u in units) == ["a", "b"]
        for unit in units:
            assert set(unit.stages) == {"concolic", "enforce"}  # not "solve"
            assert 0.0 <= unit.coverage() <= 1.05

    def test_chrome_export_is_complete_events(self, tmp_path):
        data = self._sample_trace(tmp_path)
        events = chrome_trace_events(data)
        assert len(events) == len(data.records)
        assert all(e["ph"] == "X" for e in events)
        assert all(e["ts"] >= 0 for e in events)
        json.dumps(events)  # must be serializable as-is
