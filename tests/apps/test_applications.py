"""Structural tests for the five benchmark application models."""

import pytest

from repro.apps import all_applications, application_names, get_application
from repro.apps.appbase import Application
from repro.core.sites import identify_target_sites
from repro.exec.concrete import ConcreteInterpreter
from repro.exec.trace import ExecutionOutcome


class TestRegistry:
    def test_all_five_applications_available(self):
        assert set(application_names()) == {
            "dillo",
            "vlc",
            "swfplay",
            "cwebp",
            "imagemagick",
        }

    def test_get_application_case_insensitive(self):
        assert get_application("DILLO").name == "Dillo 2.1"

    def test_unknown_application_raises(self):
        with pytest.raises(KeyError):
            get_application("firefox")

    def test_all_applications_builds_each_once(self):
        apps = all_applications()
        assert len(apps) == 5
        assert all(isinstance(app, Application) for app in apps)


class TestPaperGroundTruthCounts:
    """The expectations encode Table 1 of the paper."""

    def test_total_target_sites_is_40(self, all_apps):
        assert sum(app.expected_total_sites() for app in all_apps) == 40

    def test_exposed_overflows_total_14(self, all_apps):
        assert sum(app.expected_counts()["exposed"] for app in all_apps) == 14

    def test_unsatisfiable_total_17(self, all_apps):
        assert sum(app.expected_counts()["unsatisfiable"] for app in all_apps) == 17

    def test_prevented_total_9(self, all_apps):
        assert sum(app.expected_counts()["prevented"] for app in all_apps) == 9

    @pytest.mark.parametrize(
        "name,total,exposed,unsat,prevented",
        [
            ("dillo", 12, 3, 1, 8),
            ("vlc", 4, 4, 0, 0),
            ("swfplay", 8, 3, 5, 0),
            ("cwebp", 7, 1, 6, 0),
            ("imagemagick", 9, 3, 5, 1),
        ],
    )
    def test_per_application_rows(self, name, total, exposed, unsat, prevented):
        app = get_application(name)
        counts = app.expected_counts()
        assert app.expected_total_sites() == total
        assert counts["exposed"] == exposed
        assert counts["unsatisfiable"] == unsat
        assert counts["prevented"] == prevented

    def test_known_cves_recorded(self):
        assert get_application("dillo").known_cves["png.c@203"] == "CVE-2009-2294"
        assert get_application("vlc").known_cves["wav.c@147"] == "CVE-2008-2430"
        assert (
            get_application("imagemagick").known_cves["xwindow.c@5619"]
            == "CVE-2009-1882"
        )

    def test_three_previously_known_overflows(self, all_apps):
        assert sum(len(app.known_cves) for app in all_apps) == 3

    def test_enforced_branch_expectations(self, all_apps):
        enforced = [
            e.enforced_branches
            for app in all_apps
            for e in app.expectations
            if e.classification == "exposed"
        ]
        assert len(enforced) == 14
        assert enforced.count(0) == 9
        assert all(2 <= count <= 5 for count in enforced if count)


class TestSeedInputs:
    def test_seed_runs_complete_without_errors(self, all_apps):
        for app in all_apps:
            report = ConcreteInterpreter(app.program).run(app.seed_input)
            assert report.outcome is ExecutionOutcome.COMPLETED, app.name
            assert report.memory_errors == [], app.name
            assert report.halt_message == "", app.name

    def test_seed_exercises_every_expected_site(self, all_apps):
        for app in all_apps:
            sites = identify_target_sites(app.program, app.seed_input)
            found = {site.site_tag for site in sites}
            expected = {e.tag for e in app.expectations}
            assert found == expected, app.name

    def test_seed_dissects_against_format(self, all_apps):
        for app in all_apps:
            dissected = app.format_spec.dissect(app.seed_input)
            assert dissected.field_values(), app.name

    def test_relevant_bytes_fall_in_mutable_fields(self, all_apps):
        """Every exposed site's relevant bytes must be rewritable, otherwise
        DIODE could never generate a triggering input for it."""
        for app in all_apps:
            exposed_tags = {
                e.tag for e in app.expectations if e.classification == "exposed"
            }
            for site in identify_target_sites(app.program, app.seed_input):
                if site.site_tag not in exposed_tags:
                    continue
                for offset in site.relevant_bytes:
                    field = app.format_spec.field_at_offset(offset)
                    assert field is not None and field.mutable, (
                        f"{app.name} {site.site_tag} byte {offset}"
                    )

    def test_expectation_lookup_helper(self, dillo_app):
        assert dillo_app.expectation_for("png.c@203").cve == "CVE-2009-2294"
        assert dillo_app.expectation_for("nonexistent") is None
