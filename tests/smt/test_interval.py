"""Tests for the interval domain, forward analysis and backward propagation."""

from repro.smt import builder as b
from repro.smt.interval import (
    Interval,
    IntervalAnalysis,
    interval_of,
    propagate_intervals,
)


class TestIntervalLattice:
    def test_full(self):
        assert Interval.full(8) == Interval(0, 255)

    def test_point(self):
        assert Interval.point(7).is_point

    def test_empty(self):
        assert Interval.empty().is_empty
        assert Interval.empty().size() == 0

    def test_contains(self):
        assert 5 in Interval(0, 10)
        assert 11 not in Interval(0, 10)

    def test_intersect(self):
        assert Interval(0, 10).intersect(Interval(5, 20)) == Interval(5, 10)

    def test_intersect_disjoint_is_empty(self):
        assert Interval(0, 4).intersect(Interval(5, 9)).is_empty

    def test_union_hull(self):
        assert Interval(0, 2).union(Interval(8, 9)) == Interval(0, 9)

    def test_union_with_empty(self):
        assert Interval.empty().union(Interval(1, 2)) == Interval(1, 2)

    def test_size(self):
        assert Interval(3, 7).size() == 5


class TestForwardAnalysis:
    def test_constant(self):
        assert interval_of(b.bv_const(9, 8)) == Interval.point(9)

    def test_unbounded_variable(self):
        assert interval_of(b.bv_var("x", 8)) == Interval(0, 255)

    def test_bounded_variable(self):
        x = b.bv_var("x", 8)
        assert interval_of(x, {"x": Interval(3, 5)}) == Interval(3, 5)

    def test_add_without_wrap(self):
        x = b.bv_var("x", 32)
        result = interval_of(b.add(x, 10), {"x": Interval(0, 100)})
        assert result == Interval(10, 110)

    def test_add_possible_wrap_goes_full(self):
        x = b.bv_var("x", 8)
        assert interval_of(b.add(x, 200)) == Interval.full(8)

    def test_mul_without_wrap(self):
        x = b.bv_var("x", 32)
        result = interval_of(b.mul(x, 4), {"x": Interval(1, 10)})
        assert result == Interval(4, 40)

    def test_lshr_by_constant(self):
        x = b.bv_var("x", 32)
        assert interval_of(b.lshr(x, b.bv_const(3, 32)), {"x": Interval(0, 1024)}) == Interval(0, 128)

    def test_zext_preserves(self):
        x = b.bv_var("x", 8)
        assert interval_of(b.zext(x, 32), {"x": Interval(2, 9)}) == Interval(2, 9)

    def test_and_upper_bound(self):
        x = b.bv_var("x", 32)
        result = interval_of(b.bvand(x, 0xFF))
        assert result.hi <= 0xFF

    def test_ite_union(self):
        x = b.bv_var("x", 8)
        term = b.ite(b.bool_var("c"), b.bv_const(3, 8), b.bv_const(9, 8))
        assert interval_of(term) == Interval(3, 9)

    def test_udiv_by_constant(self):
        x = b.bv_var("x", 32)
        assert interval_of(b.udiv(x, 4), {"x": Interval(8, 40)}) == Interval(2, 10)


class TestDecide:
    def test_decides_true(self):
        x = b.bv_var("x", 32)
        analysis = IntervalAnalysis({"x": Interval(0, 10)})
        assert analysis.decide(b.ult(x, 11)) is True

    def test_decides_false(self):
        x = b.bv_var("x", 32)
        analysis = IntervalAnalysis({"x": Interval(0, 10)})
        assert analysis.decide(b.ugt(x, 20)) is False

    def test_undecided(self):
        x = b.bv_var("x", 32)
        analysis = IntervalAnalysis({"x": Interval(0, 10)})
        assert analysis.decide(b.ult(x, 5)) is None

    def test_disjunction(self):
        x = b.bv_var("x", 32)
        analysis = IntervalAnalysis({"x": Interval(0, 10)})
        constraint = b.bor(b.ugt(x, 20), b.ult(x, 11))
        assert analysis.decide(constraint) is True

    def test_conjunction_false(self):
        x = b.bv_var("x", 32)
        analysis = IntervalAnalysis({"x": Interval(0, 10)})
        constraint = b.band(b.ugt(x, 20), b.ult(x, 5))
        assert analysis.decide(constraint) is False


class TestPropagation:
    def test_simple_upper_bound(self):
        x = b.bv_var("x", 32)
        feasible, bounds = propagate_intervals([b.ult(x, 100)], {"x": 32})
        assert feasible
        assert bounds["x"].hi == 99

    def test_contradictory_bounds_infeasible(self):
        x = b.bv_var("x", 32)
        feasible, _ = propagate_intervals(
            [b.ult(x, 10), b.ugt(x, 20)], {"x": 32}
        )
        assert not feasible

    def test_propagates_through_multiplication_by_constant(self):
        x = b.bv_var("x", 32)
        wide = b.mul(b.zext(x, 64), b.bv_const(4, 64))
        feasible, bounds = propagate_intervals(
            [b.ule(wide, b.bv_const(400, 64))], {"x": 32}
        )
        assert feasible
        assert bounds["x"].hi == 100

    def test_equality_pins_variable(self):
        x = b.bv_var("x", 32)
        feasible, bounds = propagate_intervals([b.eq(x, 42)], {"x": 32})
        assert feasible
        assert bounds["x"] == Interval(42, 42)

    def test_overflow_with_sanity_bounds_is_infeasible(self):
        """The paper's Dillo scenario: bounded width/height cannot overflow."""
        w = b.bv_var("w", 32)
        h = b.bv_var("h", 32)
        overflow = b.ugt(
            b.mul(b.zext(w, 64), b.zext(h, 64)), b.bv_const(0xFFFFFFFF, 64)
        )
        feasible, _ = propagate_intervals(
            [overflow, b.ult(w, 1154), b.ult(h, 1_000_000)], {"w": 32, "h": 32}
        )
        assert not feasible

    def test_overflow_with_loose_bounds_stays_feasible(self):
        w = b.bv_var("w", 32)
        h = b.bv_var("h", 32)
        overflow = b.ugt(
            b.mul(b.zext(w, 64), b.zext(h, 64)), b.bv_const(0xFFFFFFFF, 64)
        )
        feasible, _ = propagate_intervals(
            [overflow, b.ult(w, 1_000_000), b.ult(h, 1_000_000)], {"w": 32, "h": 32}
        )
        assert feasible

    def test_term_bound_learning_on_shared_expression(self):
        """A bound on a shared expression node limits other constraints.

        This mirrors the paper's blocking check: the seed-path loop pins
        ``rowbytes`` even though ``rowbytes`` is not a variable.
        """
        w = b.bv_var("w", 32)
        bd = b.bv_var("bd", 32)
        h = b.bv_var("h", 32)
        rowbytes = b.lshr(b.mul(w, bd), b.bv_const(3, 32))
        overflow = b.ugt(
            b.mul(b.zext(rowbytes, 64), b.zext(h, 64)),
            b.bv_const(0xFFFFFFFF, 64),
        )
        feasible, _ = propagate_intervals(
            [overflow, b.ule(rowbytes, 1154), b.ult(h, 1_000_000)],
            {"w": 32, "bd": 32, "h": 32},
        )
        assert not feasible

    def test_initial_bounds_respected(self):
        x = b.bv_var("x", 32)
        feasible, bounds = propagate_intervals(
            [b.ugt(x, 5)], {"x": 32}, initial={"x": Interval(0, 10)}
        )
        assert feasible
        assert bounds["x"] == Interval(6, 10)
