"""Tests for the term language and constructors."""

import pytest

from repro.smt import builder as b
from repro.smt.builder import SortError
from repro.smt.terms import Term, TermKind, from_signed, mask, to_signed, truncate


class TestLeafConstruction:
    def test_bv_const_wraps_to_width(self):
        assert b.bv_const(0x1FF, 8).value == 0xFF

    def test_bv_const_negative_wraps(self):
        assert b.bv_const(-1, 8).value == 0xFF

    def test_bv_const_width_recorded(self):
        assert b.bv_const(3, 16).width == 16

    def test_bv_const_rejects_zero_width(self):
        with pytest.raises(SortError):
            b.bv_const(1, 0)

    def test_bv_var_name_and_width(self):
        var = b.bv_var("w", 32)
        assert var.name == "w"
        assert var.width == 32
        assert var.is_var

    def test_bool_constants(self):
        assert b.bool_const(True).value == 1
        assert b.bool_const(False).value == 0
        assert b.TRUE.is_bool

    def test_bool_var(self):
        var = b.bool_var("flag")
        assert var.is_bool and var.is_var


class TestHashConsing:
    def test_identical_constants_are_interned(self):
        assert b.bv_const(7, 32) is b.bv_const(7, 32)

    def test_different_width_not_shared(self):
        assert b.bv_const(7, 32) is not b.bv_const(7, 16)

    def test_identical_compound_terms_are_interned(self):
        x = b.bv_var("x", 32)
        assert b.add(x, 1) is b.add(x, 1)

    def test_commutative_operands_are_canonicalised(self):
        x = b.bv_var("x", 32)
        y = b.bv_var("y", 32)
        assert b.add(x, y) is b.add(y, x)
        assert b.mul(x, y) is b.mul(y, x)

    def test_non_commutative_operands_not_swapped(self):
        x = b.bv_var("x", 32)
        y = b.bv_var("y", 32)
        assert b.sub(x, y) is not b.sub(y, x)


class TestSortChecking:
    def test_width_mismatch_rejected(self):
        with pytest.raises(SortError):
            b.add(b.bv_var("a", 8), b.bv_var("b", 16))

    def test_bool_operand_in_arithmetic_rejected(self):
        with pytest.raises(SortError):
            b.add(b.bool_var("p"), b.bv_var("b", 16))

    def test_two_python_ints_rejected(self):
        with pytest.raises(SortError):
            b.add(1, 2)

    def test_extract_out_of_range_rejected(self):
        with pytest.raises(SortError):
            b.extract(b.bv_var("x", 8), 8, 0)

    def test_zext_shrinking_rejected(self):
        with pytest.raises(SortError):
            b.zext(b.bv_var("x", 16), 8)

    def test_zext_same_width_is_identity(self):
        x = b.bv_var("x", 16)
        assert b.zext(x, 16) is x


class TestStructuralOperators:
    def test_concat_width(self):
        assert b.concat(b.bv_var("h", 8), b.bv_var("l", 16)).width == 24

    def test_extract_width(self):
        assert b.extract(b.bv_var("x", 32), 15, 8).width == 8

    def test_ite_requires_bool_condition(self):
        with pytest.raises(SortError):
            b.ite(b.bv_var("x", 8), 1, 2)

    def test_ite_infers_width_from_branch(self):
        x = b.bv_var("x", 8)
        term = b.ite(b.bool_var("c"), x, 0)
        assert term.width == 8

    def test_comparison_result_is_bool(self):
        assert b.ult(b.bv_var("x", 8), 3).is_bool

    def test_boolean_connective_arity(self):
        p, q, r = b.bool_var("p"), b.bool_var("q"), b.bool_var("r")
        assert b.band(p, q, r).is_bool
        assert b.band() is b.TRUE
        assert b.bor() is b.FALSE


class TestTraversal:
    def test_variables_collects_distinct_vars(self):
        x = b.bv_var("x", 32)
        y = b.bv_var("y", 32)
        term = b.add(b.mul(x, y), x)
        names = {v.name for v in term.variables()}
        assert names == {"x", "y"}

    def test_subterms_includes_self(self):
        x = b.bv_var("x", 32)
        term = b.add(x, 1)
        assert term in term.subterms()
        assert x in term.subterms()

    def test_size_counts_dag_nodes_once(self):
        x = b.bv_var("x", 32)
        shared = b.mul(x, x)
        term = b.add(shared, shared)
        assert term.size() == 3  # add, mul, x

    def test_pretty_renders_something(self):
        term = b.add(b.bv_var("x", 8), 3)
        assert "add" in term.pretty()


class TestNumericHelpers:
    def test_mask(self):
        assert mask(8) == 0xFF

    def test_truncate(self):
        assert truncate(0x123, 8) == 0x23

    def test_to_signed_negative(self):
        assert to_signed(0xFF, 8) == -1

    def test_to_signed_positive(self):
        assert to_signed(0x7F, 8) == 127

    def test_from_signed_roundtrip(self):
        assert from_signed(-2, 8) == 0xFE
