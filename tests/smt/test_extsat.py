"""The optional external-SAT portfolio arm.

Two regimes, matching CI's two matrices:

* **without** ``python-sat`` installed (the default matrix): the knob is
  inert — ``external_backend`` returns ``None`` and every solve falls
  back to the pure core, statuses unchanged;
* **with** it installed (the ``external-sat-smoke`` job): the backend is
  a drop-in — statuses, models and assumption cores line up with the
  pure :class:`CDCLSolver` on generated CNFs, and the shadow raises on a
  fabricated disagreement.

The shadow-parity machinery itself is tested in both regimes by stubbing
the backend, so a missing optional dependency never skips the safety
logic.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt import builder as b
from repro.smt import solver as solver_mod
from repro.smt.cnf import CNF
from repro.smt.extsat import PySATBackend, external_backend, pysat_available
from repro.smt.sat import CDCLSolver, SatResult, SatStatus
from repro.smt.solver import (
    ExternalSatParityError,
    PortfolioSolver,
    SolverConfig,
)

needs_pysat = pytest.mark.skipif(
    not pysat_available(), reason="optional python-sat package not installed"
)


def _cdcl_bound_system(tag, residue=5):
    x = b.bv_var(f"xs{tag}", 16)
    return [
        b.eq(b.bvand(b.mul(x, x), b.bv_const(31, 16)), b.bv_const(residue, 16))
    ]


@st.composite
def random_cnfs(draw):
    num_vars = draw(st.integers(min_value=1, max_value=8))
    literal = st.integers(min_value=1, max_value=num_vars).flatmap(
        lambda v: st.sampled_from([v, -v])
    )
    clauses = draw(
        st.lists(
            st.lists(literal, min_size=1, max_size=4), min_size=0, max_size=16
        )
    )
    cnf = CNF()
    for _ in range(num_vars):
        cnf.new_var()
    for clause in clauses:
        cnf.add_clause(clause)
    return cnf


# ----------------------------------------------------------------------
# Both regimes: configuration and fallback behavior
# ----------------------------------------------------------------------
class TestKnobs:
    def test_external_sat_defaults_off(self):
        config = SolverConfig()
        assert config.enable_external_sat is False
        assert config.external_sat_shadow is False

    def test_both_knobs_are_fingerprinted(self):
        base = SolverConfig().fingerprint()
        assert SolverConfig(enable_external_sat=True).fingerprint() != base
        assert SolverConfig(external_sat_shadow=True).fingerprint() != base

    def test_enabled_arm_still_answers_when_pysat_is_missing(self):
        """With the knob on but no backend available, the pure core runs."""
        config = SolverConfig(
            enable_external_sat=True,
            enable_sessions=False,
            enable_decomposition=False,
            heuristic_max_checks=2,
        )
        result = PortfolioSolver(config).check(_cdcl_bound_system("fb"))
        assert result.is_unsat
        if not pysat_available():
            assert external_backend(CNF()) is None


class TestShadowMachinery:
    """Stubbed-backend tests: run in both CI regimes."""

    def _solve_with_stub(self, monkeypatch, stub_status, shadow=True):
        def fake_backend(cnf, max_conflicts=None):
            class Stub:
                def solve(self, assumptions=()):
                    if stub_status == SatStatus.SAT:
                        return SatResult(
                            status=SatStatus.SAT,
                            assignment={
                                var: True for var in range(1, cnf.num_vars + 1)
                            },
                        )
                    return SatResult(status=stub_status, core=())

            return Stub()

        monkeypatch.setattr(solver_mod, "external_backend", fake_backend)
        config = SolverConfig(
            enable_external_sat=True,
            external_sat_shadow=shadow,
            enable_sessions=False,
            enable_decomposition=False,
            heuristic_max_checks=2,
        )
        # UNSAT system: a stub saying SAT fabricates a disagreement.
        return PortfolioSolver(config).check(_cdcl_bound_system("sh"))

    def test_shadow_raises_on_a_fabricated_disagreement(self, monkeypatch):
        with pytest.raises(ExternalSatParityError):
            self._solve_with_stub(monkeypatch, SatStatus.SAT, shadow=True)

    def test_shadow_accepts_an_agreeing_backend(self, monkeypatch):
        result = self._solve_with_stub(monkeypatch, SatStatus.UNSAT, shadow=True)
        assert result.is_unsat

    def test_external_unknown_is_compatible_with_any_shadow_verdict(
        self, monkeypatch
    ):
        """Budget artifacts never trip the parity check."""
        result = self._solve_with_stub(
            monkeypatch, SatStatus.UNKNOWN, shadow=True
        )
        assert result.is_unknown

    def test_without_shadow_the_external_verdict_stands(self, monkeypatch):
        # Dangerous by design — which is why CI always runs the shadow.
        result = self._solve_with_stub(monkeypatch, SatStatus.UNSAT, shadow=False)
        assert result.is_unsat


# ----------------------------------------------------------------------
# PySAT regime only: the real backend
# ----------------------------------------------------------------------
@needs_pysat
class TestPySATBackend:
    def test_simple_sat_and_unsat(self):
        cnf = CNF()
        x, y = cnf.new_var(), cnf.new_var()
        cnf.add_clause((x, y))
        cnf.add_clause((-x, y))
        backend = PySATBackend(cnf)
        result = backend.solve()
        assert result.status == SatStatus.SAT
        assert result.assignment[y] is True
        cnf.add_unit(-y)
        assert backend.solve().status == SatStatus.UNSAT
        backend.delete()

    def test_assumption_core_is_a_subset_of_the_assumptions(self):
        cnf = CNF()
        x, y = cnf.new_var(), cnf.new_var()
        cnf.add_clause((-x, -y))
        backend = PySATBackend(cnf)
        result = backend.solve(assumptions=[x, y])
        assert result.status == SatStatus.UNSAT
        assert result.core
        assert set(result.core) <= {x, y}
        backend.delete()

    def test_contradicted_cnf_reports_unsat(self):
        cnf = CNF()
        cnf.add_clause(())
        backend = PySATBackend(cnf)
        assert backend.solve().status == SatStatus.UNSAT
        backend.delete()

    def test_portfolio_statuses_match_the_pure_arm_on_the_registry_shapes(self):
        pure_config = SolverConfig(
            enable_sessions=False,
            enable_decomposition=False,
            heuristic_max_checks=2,
        )
        external_config = SolverConfig(
            enable_external_sat=True,
            external_sat_shadow=True,
            enable_sessions=False,
            enable_decomposition=False,
            heuristic_max_checks=2,
        )
        systems = [
            _cdcl_bound_system("p1", residue=5),
            _cdcl_bound_system("p2", residue=4),
            _cdcl_bound_system("p3", residue=13),
        ]
        for system in systems:
            pure = PortfolioSolver(pure_config).check(system)
            external = PortfolioSolver(external_config).check(system)
            assert external.status == pure.status


@needs_pysat
@settings(max_examples=150, deadline=None)
@given(random_cnfs())
def test_pysat_matches_the_pure_core_on_random_cnfs(cnf):
    pure = CDCLSolver(cnf).solve()
    backend = PySATBackend(cnf)
    external = backend.solve()
    backend.delete()
    assert external.status == pure.status
    if external.status == SatStatus.SAT:
        for clause in cnf.clauses:
            assert any(
                external.assignment.get(abs(lit), False) == (lit > 0)
                for lit in clause
            )
