"""Tests for the simplifier and the evaluator."""

import pytest

from repro.smt import builder as b
from repro.smt.evalmodel import EvaluationError, Model, evaluate, satisfies
from repro.smt.simplify import simplify
from repro.smt.terms import TermKind


class TestConstantFolding:
    def test_add_folds(self):
        assert simplify(b.add(b.bv_const(3, 8), b.bv_const(4, 8))).value == 7

    def test_add_wraps(self):
        assert simplify(b.add(b.bv_const(200, 8), b.bv_const(100, 8))).value == 44

    def test_mul_folds_and_wraps(self):
        assert simplify(b.mul(b.bv_const(16, 8), b.bv_const(16, 8))).value == 0

    def test_sub_borrow_wraps(self):
        assert simplify(b.sub(b.bv_const(1, 8), b.bv_const(2, 8))).value == 0xFF

    def test_udiv_by_zero_is_all_ones(self):
        assert simplify(b.udiv(b.bv_const(9, 8), b.bv_const(0, 8))).value == 0xFF

    def test_urem_by_zero_is_dividend(self):
        assert simplify(b.urem(b.bv_const(9, 8), b.bv_const(0, 8))).value == 9

    def test_comparison_folds_to_bool(self):
        assert simplify(b.ult(b.bv_const(3, 8), b.bv_const(4, 8))) is b.TRUE
        assert simplify(b.ugt(b.bv_const(3, 8), b.bv_const(4, 8))) is b.FALSE

    def test_signed_comparison_folds(self):
        assert simplify(b.slt(b.bv_const(0xFF, 8), b.bv_const(1, 8))) is b.TRUE

    def test_shift_folds(self):
        assert simplify(b.shl(b.bv_const(1, 8), b.bv_const(3, 8))).value == 8
        assert simplify(b.lshr(b.bv_const(0x80, 8), b.bv_const(7, 8))).value == 1

    def test_oversized_shift_is_zero(self):
        assert simplify(b.shl(b.bv_const(1, 8), b.bv_const(9, 8))).value == 0

    def test_extract_folds(self):
        assert simplify(b.extract(b.bv_const(0xABCD, 16), 15, 8)).value == 0xAB

    def test_concat_folds(self):
        assert simplify(b.concat(b.bv_const(0xAB, 8), b.bv_const(0xCD, 8))).value == 0xABCD


class TestIdentityRules:
    def test_add_zero_identity(self):
        x = b.bv_var("x", 32)
        assert simplify(b.add(x, 0)) is x

    def test_mul_one_identity(self):
        x = b.bv_var("x", 32)
        assert simplify(b.mul(x, 1)) is x

    def test_mul_zero_absorbs(self):
        x = b.bv_var("x", 32)
        assert simplify(b.mul(x, 0)).value == 0

    def test_sub_self_is_zero(self):
        x = b.bv_var("x", 32)
        assert simplify(b.sub(x, x)).value == 0

    def test_and_with_zero(self):
        x = b.bv_var("x", 32)
        assert simplify(b.bvand(x, 0)).value == 0

    def test_or_with_zero_identity(self):
        x = b.bv_var("x", 32)
        assert simplify(b.bvor(x, 0)) is x

    def test_xor_self_is_zero(self):
        x = b.bv_var("x", 32)
        assert simplify(b.bvxor(x, x)).value == 0

    def test_double_negation(self):
        x = b.bv_var("x", 32)
        assert simplify(b.neg(b.neg(x))) is x

    def test_double_bitwise_not(self):
        x = b.bv_var("x", 32)
        assert simplify(b.bvnot(b.bvnot(x))) is x

    def test_double_boolean_not(self):
        p = b.bool_var("p")
        assert simplify(b.bnot(b.bnot(p))) is p

    def test_constant_add_chain_coalesces(self):
        x = b.bv_var("x", 32)
        chained = b.add(b.add(b.add(x, 1), 1), 1)
        simplified = simplify(chained)
        # The paper's Add32 coalescing example: x+1+1+1 becomes x+3.
        assert simplified.kind is TermKind.ADD
        constants = [a.value for a in simplified.args if a.is_const]
        assert constants == [3]

    def test_not_pushes_into_comparison(self):
        x = b.bv_var("x", 32)
        assert simplify(b.bnot(b.ult(x, 5))).kind is TermKind.UGE


class TestBooleanRules:
    def test_band_true_identity(self):
        p = b.bool_var("p")
        assert simplify(b.band(p, True)) is p

    def test_band_false_absorbs(self):
        p = b.bool_var("p")
        assert simplify(b.band(p, False)) is b.FALSE

    def test_bor_true_absorbs(self):
        p = b.bool_var("p")
        assert simplify(b.bor(p, True)) is b.TRUE

    def test_implies_false_antecedent(self):
        p = b.bool_var("p")
        assert simplify(b.implies(False, p)) is b.TRUE

    def test_ite_constant_condition(self):
        x = b.bv_var("x", 8)
        assert simplify(b.ite(True, x, 0)) is x

    def test_ite_equal_branches(self):
        x = b.bv_var("x", 8)
        assert simplify(b.ite(b.bool_var("c"), x, x)) is x


class TestBooleanTestUnwrapping:
    """The ite(c,1,0) != 0 patterns the concolic interpreter produces."""

    def test_ne_zero_of_flag_ite(self):
        c = b.ult(b.bv_var("x", 32), 10)
        flag = b.ite(c, b.bv_const(1, 32), b.bv_const(0, 32))
        assert simplify(b.ne(flag, 0)) is simplify(c)

    def test_eq_zero_of_flag_ite_negates(self):
        c = b.ult(b.bv_var("x", 32), 10)
        flag = b.ite(c, b.bv_const(1, 32), b.bv_const(0, 32))
        simplified = simplify(b.eq(flag, 0))
        # The flag test collapses to the negated condition (either as a BNOT
        # node or as the complementary comparison).
        assert evaluate(simplified, {"x": 3}) == 0
        assert evaluate(simplified, {"x": 30}) == 1
        assert simplified.size() <= 4

    def test_ugt_zero_of_flag_ite(self):
        c = b.ugt(b.bv_var("x", 32), 10)
        flag = b.ite(c, b.bv_const(1, 32), b.bv_const(0, 32))
        assert simplify(b.ugt(flag, 0)) is simplify(c)


class TestByteReassembly:
    def test_big_endian_reassembly_collapses_to_field(self):
        w = b.bv_var("/header/width", 32)
        pieces = [
            b.shl(b.zext(b.extract(w, 31, 24), 32), 24),
            b.shl(b.zext(b.extract(w, 23, 16), 32), 16),
            b.shl(b.zext(b.extract(w, 15, 8), 32), 8),
            b.zext(b.extract(w, 7, 0), 32),
        ]
        term = b.bvor(b.bvor(b.bvor(pieces[0], pieces[1]), pieces[2]), pieces[3])
        assert simplify(term) is w

    def test_little_endian_reassembly_collapses_to_field(self):
        w = b.bv_var("/fmt/extra", 32)
        term = b.bvor(
            b.bvor(
                b.zext(b.extract(w, 7, 0), 32),
                b.shl(b.zext(b.extract(w, 15, 8), 32), 8),
            ),
            b.bvor(
                b.shl(b.zext(b.extract(w, 23, 16), 32), 16),
                b.shl(b.zext(b.extract(w, 31, 24), 32), 24),
            ),
        )
        assert simplify(term) is w

    def test_sixteen_bit_field_reassembly_zero_extends(self):
        w = b.bv_var("/jpeg/width", 16)
        term = b.bvor(
            b.shl(b.zext(b.extract(w, 15, 8), 32), 8),
            b.zext(b.extract(w, 7, 0), 32),
        )
        simplified = simplify(term)
        assert simplified.kind is TermKind.ZEXT
        assert simplified.args[0] is w

    def test_partial_reassembly_not_collapsed(self):
        w = b.bv_var("w", 32)
        term = b.bvor(
            b.shl(b.zext(b.extract(w, 31, 24), 32), 24),
            b.shl(b.zext(b.extract(w, 15, 8), 32), 8),
        )
        assert simplify(term).kind is TermKind.OR

    def test_mixed_variables_not_collapsed(self):
        w = b.bv_var("w", 32)
        h = b.bv_var("h", 32)
        term = b.bvor(
            b.shl(b.zext(b.extract(w, 15, 8), 32), 8),
            b.zext(b.extract(h, 7, 0), 32),
        )
        assert simplify(term).kind is TermKind.OR


class TestSimplifyPreservesSemantics:
    @pytest.mark.parametrize("value", [0, 1, 254, 255, 128, 77])
    def test_reassembly_semantics(self, value):
        w = b.bv_var("w", 8)
        term = b.zext(b.extract(w, 7, 0), 32)
        assert evaluate(simplify(term), {"w": value}) == evaluate(term, {"w": value})

    @pytest.mark.parametrize("x,y", [(0, 0), (255, 1), (128, 128), (3, 200)])
    def test_add_chain_semantics(self, x, y):
        a = b.bv_var("a", 8)
        term = b.add(b.add(a, b.bv_const(x, 8)), b.bv_const(y, 8))
        model = {"a": 17}
        assert evaluate(simplify(term), model) == evaluate(term, model)


class TestEvaluator:
    def test_variable_lookup(self):
        x = b.bv_var("x", 16)
        assert evaluate(x, {"x": 513}) == 513

    def test_unassigned_variable_raises(self):
        with pytest.raises(EvaluationError):
            evaluate(b.bv_var("missing", 8), {})

    def test_wrapping_mul(self):
        x = b.bv_var("x", 8)
        assert evaluate(b.mul(x, 2), {"x": 200}) == (400 & 0xFF)

    def test_ashr_sign_fill(self):
        x = b.bv_var("x", 8)
        assert evaluate(b.ashr(x, b.bv_const(1, 8)), {"x": 0x80}) == 0xC0

    def test_sext(self):
        x = b.bv_var("x", 8)
        assert evaluate(b.sext(x, 16), {"x": 0xFF}) == 0xFFFF

    def test_signed_comparison(self):
        x = b.bv_var("x", 8)
        assert evaluate(b.slt(x, 0), {"x": 0x80}) == 1

    def test_ite_evaluation(self):
        x = b.bv_var("x", 8)
        term = b.ite(b.ult(x, 10), b.bv_const(1, 8), b.bv_const(2, 8))
        assert evaluate(term, {"x": 5}) == 1
        assert evaluate(term, {"x": 50}) == 2

    def test_satisfies_requires_bool(self):
        with pytest.raises(EvaluationError):
            satisfies(b.bv_var("x", 8), {"x": 1})

    def test_satisfies(self):
        x = b.bv_var("x", 8)
        assert satisfies(b.ugt(x, 10), {"x": 11})
        assert not satisfies(b.ugt(x, 10), {"x": 10})


class TestModel:
    def test_mapping_interface(self):
        model = Model({"a": 1})
        model["b"] = 2
        assert model["a"] == 1 and model["b"] == 2
        assert "a" in model and len(model) == 2

    def test_term_keys(self):
        x = b.bv_var("x", 8)
        model = Model()
        model[x] = 7
        assert model[x] == 7 and model["x"] == 7

    def test_copy_is_independent(self):
        model = Model({"a": 1})
        clone = model.copy()
        clone["a"] = 2
        assert model["a"] == 1

    def test_restricted_to(self):
        model = Model({"a": 1, "b": 2})
        assert model.restricted_to(["a"]).as_dict() == {"a": 1}

    def test_equality_and_hash(self):
        assert Model({"a": 1}) == Model({"a": 1})
        assert hash(Model({"a": 1})) == hash(Model({"a": 1}))
