"""Property-based tests for the SMT substrate (hypothesis).

Core invariants:

* the simplifier preserves the semantics of arbitrary terms;
* interval analysis is sound (the concrete value always lies in the forward
  interval);
* the bit-blasting backend agrees with the term evaluator on small widths;
* machine arithmetic in the evaluator matches Python big-int arithmetic
  reduced modulo the width.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt import builder as b
from repro.smt.bitblast import solve_terms
from repro.smt.evalmodel import evaluate
from repro.smt.interval import Interval, interval_of, propagate_intervals
from repro.smt.sat import SatStatus
from repro.smt.simplify import simplify
from repro.smt.terms import Term, TermKind, to_signed

WIDTH = 8
VALUE = st.integers(min_value=0, max_value=(1 << WIDTH) - 1)


def _leaf_terms():
    return st.one_of(
        VALUE.map(lambda v: b.bv_const(v, WIDTH)),
        st.sampled_from(["x", "y", "z"]).map(lambda n: b.bv_var(n, WIDTH)),
    )


def _binary_ops():
    return st.sampled_from(
        [b.add, b.sub, b.mul, b.udiv, b.urem, b.bvand, b.bvor, b.bvxor, b.shl, b.lshr]
    )


def _unary_ops():
    return st.sampled_from([b.neg, b.bvnot])


@st.composite
def bv_terms(draw, max_depth=4):
    depth = draw(st.integers(min_value=0, max_value=max_depth))
    if depth == 0:
        return draw(_leaf_terms())
    shape = draw(st.integers(min_value=0, max_value=2))
    if shape == 0:
        return draw(_leaf_terms())
    if shape == 1:
        op = draw(_unary_ops())
        return op(draw(bv_terms(max_depth=depth - 1)))
    op = draw(_binary_ops())
    return op(draw(bv_terms(max_depth=depth - 1)), draw(bv_terms(max_depth=depth - 1)))


MODELS = st.fixed_dictionaries({"x": VALUE, "y": VALUE, "z": VALUE})


class TestSimplifierSoundness:
    @given(term=bv_terms(), model=MODELS)
    @settings(max_examples=200, deadline=None)
    def test_simplify_preserves_value(self, term, model):
        assert evaluate(simplify(term), model) == evaluate(term, model)

    @given(term=bv_terms(), model=MODELS)
    @settings(max_examples=100, deadline=None)
    def test_simplify_is_idempotent_semantically(self, term, model):
        once = simplify(term)
        twice = simplify(once)
        assert evaluate(twice, model) == evaluate(once, model)

    @given(left=bv_terms(), right=bv_terms(), model=MODELS)
    @settings(max_examples=100, deadline=None)
    def test_comparison_simplification_preserves_truth(self, left, right, model):
        for comparison in (b.ult, b.ule, b.eq, b.ne, b.slt, b.sge):
            term = comparison(left, right)
            assert evaluate(simplify(term), model) == evaluate(term, model)


class TestIntervalSoundness:
    @given(term=bv_terms(), model=MODELS)
    @settings(max_examples=200, deadline=None)
    def test_concrete_value_lies_in_forward_interval(self, term, model):
        bounds = {name: Interval.point(value) for name, value in model.items()}
        interval = interval_of(term, bounds)
        value = evaluate(term, model)
        assert not interval.is_empty
        assert interval.lo <= value <= interval.hi

    @given(term=bv_terms(), model=MODELS, limit=VALUE)
    @settings(max_examples=100, deadline=None)
    def test_propagation_never_excludes_a_real_model(self, term, model, limit):
        constraint = b.ule(term, b.bv_const(limit, WIDTH))
        if evaluate(constraint, model) != 1:
            return
        feasible, bounds = propagate_intervals(
            [constraint], {name: WIDTH for name in model}
        )
        assert feasible
        for name, value in model.items():
            assert value in bounds[name]


class TestMachineArithmeticAgreement:
    @given(x=VALUE, y=VALUE)
    @settings(max_examples=200, deadline=None)
    def test_add_matches_python_mod(self, x, y):
        term = b.add(b.bv_var("x", WIDTH), b.bv_var("y", WIDTH))
        assert evaluate(term, {"x": x, "y": y}) == (x + y) % (1 << WIDTH)

    @given(x=VALUE, y=VALUE)
    @settings(max_examples=200, deadline=None)
    def test_mul_matches_python_mod(self, x, y):
        term = b.mul(b.bv_var("x", WIDTH), b.bv_var("y", WIDTH))
        assert evaluate(term, {"x": x, "y": y}) == (x * y) % (1 << WIDTH)

    @given(x=VALUE)
    @settings(max_examples=100, deadline=None)
    def test_signed_interpretation_roundtrip(self, x):
        signed = to_signed(x, WIDTH)
        assert signed % (1 << WIDTH) == x


class TestBitBlastAgreement:
    @given(term=bv_terms(max_depth=3), model=MODELS)
    @settings(max_examples=40, deadline=None)
    def test_bitblast_accepts_the_evaluator_model(self, term, model):
        """If the evaluator says a point satisfies term == value, the CDCL
        backend must agree that the constraint is satisfiable."""
        value = evaluate(term, model)
        constraints = [
            b.eq(term, b.bv_const(value, WIDTH)),
            b.eq(b.bv_var("x", WIDTH), b.bv_const(model["x"], WIDTH)),
            b.eq(b.bv_var("y", WIDTH), b.bv_const(model["y"], WIDTH)),
            b.eq(b.bv_var("z", WIDTH), b.bv_const(model["z"], WIDTH)),
        ]
        status, solved = solve_terms(constraints)
        assert status == SatStatus.SAT
        assert evaluate(term, solved) == value

    @given(model=MODELS, limit=VALUE)
    @settings(max_examples=30, deadline=None)
    def test_bitblast_models_satisfy_original_constraints(self, model, limit):
        x = b.bv_var("x", WIDTH)
        y = b.bv_var("y", WIDTH)
        constraint = b.ugt(b.add(b.mul(x, y), x), b.bv_const(limit, WIDTH))
        status, solved = solve_terms([constraint])
        if status == SatStatus.SAT:
            assert evaluate(constraint, solved) == 1
