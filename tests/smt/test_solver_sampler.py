"""Tests for the portfolio solver, the sampler and the overflow heuristics."""

import pytest

from repro.smt import builder as b
from repro.smt.evalmodel import evaluate, satisfies
from repro.smt.heuristics import overflow_witness_hint, try_algebraic_solution
from repro.smt.sampler import ModelSampler, SamplerConfig, split_conjuncts
from repro.smt.solver import PortfolioSolver, SolverConfig, SolverStatus


@pytest.fixture
def solver():
    return PortfolioSolver()


class TestPortfolioBasic:
    def test_empty_query_is_sat(self, solver):
        assert solver.check([]).is_sat

    def test_true_constant(self, solver):
        assert solver.check([b.TRUE]).is_sat

    def test_false_constant(self, solver):
        assert solver.check([b.FALSE]).is_unsat

    def test_point_constraint(self, solver):
        x = b.bv_var("x", 32)
        result = solver.check([b.eq(x, 1234)])
        assert result.is_sat
        assert result.model["x"] == 1234

    def test_contradiction_via_intervals(self, solver):
        x = b.bv_var("x", 32)
        result = solver.check([b.ult(x, 10), b.ugt(x, 20)])
        assert result.is_unsat

    def test_model_always_satisfies(self, solver):
        x = b.bv_var("x", 32)
        y = b.bv_var("y", 32)
        constraints = [b.ugt(b.mul(x, y), 1000), b.ult(x, 100), b.ult(y, 100)]
        result = solver.check(constraints)
        assert result.is_sat
        for constraint in constraints:
            assert satisfies(constraint, result.model)

    def test_sat_result_carries_metadata(self, solver):
        x = b.bv_var("x", 32)
        result = solver.check([b.ugt(x, 5)])
        assert result.is_sat
        assert result.stages_tried
        assert result.elapsed_seconds >= 0

    def test_solve_for_model_none_on_unsat(self, solver):
        x = b.bv_var("x", 32)
        assert solver.solve_for_model([b.ult(x, 3), b.ugt(x, 5)]) is None


class TestPortfolioOverflowQueries:
    def test_dillo_style_overflow_sat(self, solver):
        w = b.bv_var("w", 32)
        h = b.bv_var("h", 32)
        wide = b.mul(b.zext(w, 64), b.zext(h, 64))
        result = solver.check(
            [b.ugt(wide, b.bv_const(0xFFFFFFFF, 64)), b.ult(w, 10**6), b.ult(h, 10**6)]
        )
        assert result.is_sat
        assert evaluate(wide, result.model) > 0xFFFFFFFF

    def test_dillo_style_overflow_unsat_with_blocking_bound(self, solver):
        w = b.bv_var("w", 32)
        h = b.bv_var("h", 32)
        wide = b.mul(b.zext(w, 64), b.zext(h, 64))
        result = solver.check(
            [b.ugt(wide, b.bv_const(0xFFFFFFFF, 64)), b.ult(w, 1154), b.ult(h, 10**6)]
        )
        assert result.is_unsat

    def test_addition_overflow_two_solutions(self, solver):
        """The CVE-2008-2430 shape: x + 2 wraps for exactly two values."""
        x = b.bv_var("x", 32)
        wide = b.add(b.zext(x, 64), b.bv_const(2, 64))
        result = solver.check([b.ugt(wide, b.bv_const(0xFFFFFFFF, 64))])
        assert result.is_sat
        assert result.model["x"] in (0xFFFFFFFE, 0xFFFFFFFF)

    def test_small_bitblast_fallback(self, solver):
        x = b.bv_var("x", 8)
        y = b.bv_var("y", 8)
        constraint = b.eq(b.bvxor(b.mul(x, y), b.bv_const(0x5A, 8)), 0)
        result = solver.check([constraint, b.ugt(x, 3), b.ugt(y, 3)])
        assert result.is_sat
        assert satisfies(constraint, result.model)


class TestSampler:
    def test_split_conjuncts(self):
        p, q, r = b.bool_var("p"), b.bool_var("q"), b.bool_var("r")
        assert len(split_conjuncts(b.band(p, b.band(q, r)))) == 3

    def test_samples_satisfy_constraint(self):
        x = b.bv_var("x", 32)
        y = b.bv_var("y", 32)
        constraint = b.band(b.ult(x, 1000), b.ugt(b.mul(x, y), 500_000))
        sampler = ModelSampler(constraint, [x, y], SamplerConfig(seed=3))
        models = sampler.sample(20)
        assert len(models) == 20
        for model in models:
            assert satisfies(constraint, model)

    def test_samples_are_diverse(self):
        x = b.bv_var("x", 32)
        constraint = b.ugt(x, 10)
        sampler = ModelSampler(constraint, [x], SamplerConfig(seed=5))
        values = {model["x"] for model in sampler.sample(30)}
        assert len(values) > 5

    def test_unsatisfiable_returns_nothing(self):
        x = b.bv_var("x", 32)
        constraint = b.band(b.ult(x, 5), b.ugt(x, 10))
        sampler = ModelSampler(constraint, [x], SamplerConfig(seed=1))
        assert sampler.sample(5) == []

    def test_trivially_true_constraint(self):
        x = b.bv_var("x", 32)
        sampler = ModelSampler(b.TRUE, [x], SamplerConfig(seed=1))
        assert len(sampler.sample(3)) == 3

    def test_deterministic_with_seed(self):
        x = b.bv_var("x", 32)
        constraint = b.ugt(x, 100)
        first = ModelSampler(constraint, [x], SamplerConfig(seed=11)).sample(5)
        second = ModelSampler(constraint, [x], SamplerConfig(seed=11)).sample(5)
        assert [m.as_dict() for m in first] == [m.as_dict() for m in second]

    def test_solver_sample_models_interface(self):
        solver = PortfolioSolver()
        w = b.bv_var("w", 32)
        h = b.bv_var("h", 32)
        constraint = b.ugt(b.mul(b.zext(w, 64), b.zext(h, 64)), b.bv_const(0xFFFFFFFF, 64))
        models = solver.sample_models([constraint], 10, seed=2)
        assert len(models) == 10
        for model in models:
            assert satisfies(constraint, model)


class TestHeuristics:
    def test_algebraic_solution_for_bounded_overflow(self):
        w = b.bv_var("w", 32)
        h = b.bv_var("h", 32)
        constraint = b.band(
            b.ugt(b.mul(b.zext(w, 64), b.zext(h, 64)), b.bv_const(0xFFFFFFFF, 64)),
            b.band(b.ult(w, 10**6), b.ult(h, 10**6)),
        )
        model = try_algebraic_solution(constraint)
        assert model is not None
        assert satisfies(constraint, model)

    def test_algebraic_solution_none_for_unsat(self):
        x = b.bv_var("x", 32)
        constraint = b.band(b.ult(x, 5), b.ugt(x, 10))
        assert try_algebraic_solution(constraint) is None

    def test_overflow_witness_hint_targets_large_values(self):
        w = b.bv_var("w", 32)
        h = b.bv_var("h", 32)
        hint = overflow_witness_hint(b.mul(w, h), 32)
        assert hint["w"] >= 1 << 16
        assert hint["h"] >= 1 << 16
