"""Tests for the shared solver-result cache (:mod:`repro.smt.cache`).

The central property: a :class:`PortfolioSolver` backed by a cache is
*observationally equivalent* to an uncached one — same SAT/UNSAT/UNKNOWN
verdicts, and every SAT model it returns satisfies the original
constraints — for arbitrary constraint systems, across alpha-renamings,
and regardless of how many queries warmed the cache first.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt import builder as b
from repro.smt.cache import (
    CachedVerdict,
    SimplifyMemo,
    SolverCache,
    simplify_memo,
)
from repro.smt.evalmodel import evaluate, satisfies
from repro.smt.simplify import simplify
from repro.smt.solver import PortfolioSolver, SolverStatus
from repro.smt.terms import Term

WIDTH = 8
VALUE = st.integers(min_value=0, max_value=(1 << WIDTH) - 1)


def _leaf_terms(names):
    return st.one_of(
        VALUE.map(lambda v: b.bv_const(v, WIDTH)),
        st.sampled_from(names).map(lambda n: b.bv_var(n, WIDTH)),
    )


def _binary_ops():
    return st.sampled_from([b.add, b.sub, b.mul, b.bvand, b.bvor, b.bvxor])


@st.composite
def bv_terms(draw, names=("x", "y", "z"), max_depth=3):
    depth = draw(st.integers(min_value=0, max_value=max_depth))
    if depth == 0:
        return draw(_leaf_terms(names))
    op = draw(_binary_ops())
    return op(
        draw(bv_terms(names=names, max_depth=depth - 1)),
        draw(bv_terms(names=names, max_depth=depth - 1)),
    )


@st.composite
def constraint_systems(draw, names=("x", "y", "z")):
    comparisons = st.sampled_from([b.ult, b.ule, b.eq, b.ne, b.ugt, b.uge])
    count = draw(st.integers(min_value=1, max_value=3))
    return [
        draw(comparisons)(
            draw(bv_terms(names=names)), draw(bv_terms(names=names))
        )
        for _ in range(count)
    ]


def _assert_model_satisfies(model, system):
    """Check a SAT model against ``system``, completing unassigned variables.

    The portfolio may return a partial model when simplification removed a
    variable entirely (the variable is then unconstrained, so any completion
    must work — zero is as good as any).
    """
    completed = model.copy()
    for constraint in system:
        for variable in constraint.variables():
            if variable not in completed:
                completed[variable] = 0
    assert all(satisfies(c, completed) for c in system)


class TestObservationalEquivalence:
    @given(system=constraint_systems())
    @settings(max_examples=60, deadline=None)
    def test_cached_solver_matches_uncached_verdicts(self, system):
        uncached = PortfolioSolver().check(system)
        cached = PortfolioSolver(cache=SolverCache()).check(system)
        assert cached.status == uncached.status
        if cached.is_sat:
            _assert_model_satisfies(cached.model, system)
        if uncached.is_sat:
            _assert_model_satisfies(uncached.model, system)

    @given(system=constraint_systems())
    @settings(max_examples=40, deadline=None)
    def test_warm_cache_answers_match_cold_answers(self, system):
        cache = SolverCache()
        solver = PortfolioSolver(cache=cache)
        cold = solver.check(system)
        warm = solver.check(system)
        assert warm.status == cold.status
        if cold.reason != "simplify":
            # Trivially decided queries never reach the cache layer.
            assert warm.reason == "cache"
        if warm.is_sat and cold.is_sat:
            assert warm.model.as_dict() == cold.model.as_dict()

    @given(system=constraint_systems(names=("x", "y", "z")))
    @settings(max_examples=40, deadline=None)
    def test_alpha_renamed_queries_share_verdicts(self, system):
        """A renamed copy of the system hits the cache with the same verdict,
        and the translated model satisfies the renamed constraints."""
        renaming = {"x": "p", "y": "q", "z": "r"}
        renamed = [_rename(c, renaming) for c in system]
        cache = SolverCache()
        solver = PortfolioSolver(cache=cache)
        original = solver.check(system)
        mirrored = solver.check(renamed)
        assert mirrored.status == original.status
        if original.reason != "simplify":
            assert cache.stats.hits >= 1
        if mirrored.is_sat:
            _assert_model_satisfies(mirrored.model, renamed)

    @given(system=constraint_systems())
    @settings(max_examples=30, deadline=None)
    def test_simplify_memo_does_not_change_verdicts(self, system):
        plain = PortfolioSolver().check(system)
        with simplify_memo():
            memoized = PortfolioSolver().check(system)
        assert memoized.status == plain.status
        if memoized.is_sat:
            _assert_model_satisfies(memoized.model, system)


def _rename(term: Term, renaming) -> Term:
    if term.is_var:
        return Term.make(
            term.kind, (), width=term.width, name=renaming[str(term.name)]
        )
    if not term.args:
        return term
    return Term.make(
        term.kind,
        tuple(_rename(a, renaming) for a in term.args),
        width=term.width,
        value=term.value,
        name=term.name,
        params=term.params,
    )


class TestCanonicalization:
    def test_alpha_equivalent_systems_share_one_key(self):
        cache = SolverCache()
        x, y = b.bv_var("x", 32), b.bv_var("y", 32)
        p, q = b.bv_var("p", 32), b.bv_var("q", 32)
        first = cache.canonicalize([b.ult(x, y)], fingerprint=())
        second = cache.canonicalize([b.ult(p, q)], fingerprint=())
        assert first.key == second.key

    def test_different_structure_gets_different_keys(self):
        cache = SolverCache()
        x, y = b.bv_var("x", 32), b.bv_var("y", 32)
        assert (
            cache.canonicalize([b.ult(x, y)], fingerprint=()).key
            != cache.canonicalize([b.ule(x, y)], fingerprint=()).key
        )

    def test_variable_width_is_part_of_the_key(self):
        cache = SolverCache()
        narrow = b.bv_var("x", 8)
        wide = b.bv_var("x", 32)
        assert (
            cache.canonicalize([b.eq(narrow, b.bv_const(1, 8))], fingerprint=()).key
            != cache.canonicalize([b.eq(wide, b.bv_const(1, 32))], fingerprint=()).key
        )

    def test_conjunct_order_is_part_of_the_key(self):
        """Conjunct order can steer which model the portfolio returns, so
        reordered systems must not be conflated."""
        cache = SolverCache()
        x = b.bv_var("x", 32)
        first = b.ult(x, b.bv_const(10, 32))
        second = b.ugt(x, b.bv_const(2, 32))
        assert (
            cache.canonicalize([first, second], fingerprint=()).key
            != cache.canonicalize([second, first], fingerprint=()).key
        )

    def test_fingerprint_separates_solver_configurations(self):
        cache = SolverCache()
        x = b.bv_var("x", 32)
        system = [b.ult(x, b.bv_const(10, 32))]
        assert (
            cache.canonicalize(system, fingerprint=("a",)).key
            != cache.canonicalize(system, fingerprint=("b",)).key
        )

    def test_model_translation_restores_caller_names(self):
        cache = SolverCache()
        p, q = b.bv_var("p", 32), b.bv_var("q", 32)
        system = cache.canonicalize([b.ult(p, q)], fingerprint=())
        from repro.smt.evalmodel import Model

        translated = system.translate_model(Model({"v000": 1, "v001": 2}))
        assert translated.as_dict() == {"p": 1, "q": 2}


class TestCacheStore:
    def test_hit_and_miss_counters(self):
        cache = SolverCache()
        solver = PortfolioSolver(cache=cache)
        x = b.bv_var("x", 32)
        system = [b.ult(x, b.bv_const(10, 32))]
        solver.check(system)
        solver.check(system)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1
        assert cache.stats.hit_rate() == pytest.approx(0.5)

    def test_max_entries_bounds_the_store(self):
        cache = SolverCache(max_entries=1)
        solver = PortfolioSolver(cache=cache)
        x = b.bv_var("x", 32)
        solver.check([b.ult(x, b.bv_const(10, 32))])
        solver.check([b.ult(x, b.bv_const(20, 32))])
        assert len(cache) == 1

    def test_eviction_is_fifo_and_counted(self):
        """At capacity the *oldest* entry is evicted; newer ones survive."""
        cache = SolverCache(max_entries=2)
        solver = PortfolioSolver(cache=cache)
        x = b.bv_var("x", 32)
        systems = [
            [b.ult(x, b.bv_const(bound, 32))] for bound in (10, 20, 30)
        ]
        for system in systems:
            solver.check(system)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert cache.stats.stores == 3
        # The first system was evicted: querying it again misses and
        # re-stores; the third (newest) still hits.
        hits_before = cache.stats.hits
        solver.check(systems[2])
        assert cache.stats.hits == hits_before + 1
        misses_before = cache.stats.misses
        solver.check(systems[0])
        assert cache.stats.misses == misses_before + 1

    def test_evicted_entries_disappear_from_snapshots(self):
        cache = SolverCache(max_entries=1)
        solver = PortfolioSolver(cache=cache)
        x = b.bv_var("x", 32)
        solver.check([b.ult(x, b.bv_const(10, 32))])
        solver.check([b.ult(x, b.bv_const(20, 32))])
        snapshot = cache.entries_snapshot()
        assert len(snapshot) == 1

    def test_zero_max_entries_stores_nothing_without_crashing(self):
        """``max_entries=0`` means "keep nothing", not an eviction loop on
        an empty dict."""
        cache = SolverCache(max_entries=0)
        solver = PortfolioSolver(cache=cache)
        x = b.bv_var("x", 32)
        result = solver.check([b.ult(x, b.bv_const(10, 32))])
        assert result.is_sat
        assert len(cache) == 0
        assert cache.stats.stores == 0
        cache.merge_canonical(
            ("fp",),
            (b.ult(b.bv_var("v000", 32), b.bv_const(3, 32)),),
            CachedVerdict(status="unsat", canonical_model=None, reason=""),
        )
        assert len(cache) == 0
        assert cache.stats.merged == 0

    def test_merge_respects_the_entry_bound(self):
        cache = SolverCache(max_entries=1)
        for index in range(3):
            x = b.bv_var("v000", 8)
            cache.merge_canonical(
                ("fp",),
                (b.eq(x, b.bv_const(index, 8)),),
                CachedVerdict(status="unsat", canonical_model=None, reason=""),
            )
        assert len(cache) == 1
        assert cache.stats.merged == 3
        assert cache.stats.evictions == 2

    def test_unsat_verdicts_are_shared(self):
        """Blocking-check systems over renamed fields share one UNSAT proof.

        The renaming (w -> v, h -> u) preserves the relative name order
        (h < w, u < v) — the class of renamings the canonicalizer
        guarantees to unify.
        """
        cache = SolverCache()
        solver = PortfolioSolver(cache=cache)
        w, h = b.bv_var("w", 32), b.bv_var("h", 32)
        v, u = b.bv_var("v", 32), b.bv_var("u", 32)
        wide = lambda a, c: b.mul(b.zext(a, 64), b.zext(c, 64))
        first = [
            b.ugt(wide(w, h), b.bv_const(0xFFFFFFFF, 64)),
            b.ult(w, b.bv_const(1154, 32)),
            b.ult(h, b.bv_const(1000, 32)),
        ]
        second = [
            b.ugt(wide(v, u), b.bv_const(0xFFFFFFFF, 64)),
            b.ult(v, b.bv_const(1154, 32)),
            b.ult(u, b.bv_const(1000, 32)),
        ]
        assert solver.check(first).is_unsat
        mirrored = solver.check(second)
        assert mirrored.is_unsat
        assert mirrored.reason == "cache"

    def test_concurrent_stats_counters_stay_consistent(self):
        """Hit/miss/store counters under many workers racing on a mix of
        shared and distinct systems: every lookup is counted exactly once,
        and the invariants hold regardless of interleaving."""
        cache = SolverCache()
        x, y = b.bv_var("x", 16), b.bv_var("y", 16)
        systems = [
            [b.ult(x, b.bv_const(bound, 16))] for bound in (5, 9, 13, 17)
        ] + [[b.ugt(b.add(x, y), b.bv_const(40, 16))]]
        queries_per_worker = 10
        workers = 8

        def worker(index):
            solver = PortfolioSolver(cache=cache)
            for i in range(queries_per_worker):
                solver.check(systems[(index + i) % len(systems)])

        threads = [
            threading.Thread(target=worker, args=(index,))
            for index in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        stats = cache.stats
        assert stats.lookups == workers * queries_per_worker
        assert stats.hits + stats.misses == stats.lookups
        # Each distinct system is solved at least once; races may solve one
        # several times (idempotent stores), so stores is bounded below by
        # the system count and above by the miss count.
        assert len(systems) <= stats.stores <= stats.misses
        assert len(cache) == len(systems)

    def test_external_stats_are_folded_in(self):
        """The process backend folds worker-side counter deltas into the
        campaign cache so aggregate hit rates reflect worker lookups."""
        cache = SolverCache()
        cache.add_external_stats(7, 3, 2, 1)
        cache.add_external_stats(3, 2, 1, 0)
        assert cache.stats.hits == 10
        assert cache.stats.misses == 5
        assert cache.stats.stores == 3
        assert cache.stats.invalid_hits == 1
        assert cache.stats.lookups == 15
        assert cache.stats.hit_rate() == pytest.approx(10 / 15)

    def test_concurrent_queries_are_consistent(self):
        cache = SolverCache()
        x, y = b.bv_var("x", 16), b.bv_var("y", 16)
        system = [
            b.ugt(b.mul(b.zext(x, 32), b.zext(y, 32)), b.bv_const(0xFFFF, 32))
        ]
        results = []

        def worker():
            solver = PortfolioSolver(cache=cache)
            results.append(solver.check(system))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        statuses = {result.status for result in results}
        assert statuses == {SolverStatus.SAT}
        models = {tuple(sorted(result.model.as_dict().items())) for result in results}
        assert len(models) == 1


class TestSimplifyMemo:
    def test_memoized_simplify_matches_plain_simplify(self):
        x = b.bv_var("x", 32)
        term = b.add(b.add(x, b.bv_const(1, 32)), b.bv_const(2, 32))
        plain = simplify(term)
        with simplify_memo():
            assert simplify(term) is plain
            assert SimplifyMemo.size() > 0

    def test_memo_is_refcounted(self):
        with simplify_memo():
            with simplify_memo():
                simplify(b.add(b.bv_var("x", 8), b.bv_const(1, 8)))
                inner = SimplifyMemo.size()
            assert SimplifyMemo.size() == inner
        assert SimplifyMemo.size() == 0

    def test_disabled_context_is_a_no_op(self):
        with simplify_memo(enabled=False):
            simplify(b.add(b.bv_var("x", 8), b.bv_const(1, 8)))
            assert SimplifyMemo.size() == 0

    @given(term=bv_terms(), model=st.fixed_dictionaries({"x": VALUE, "y": VALUE, "z": VALUE}))
    @settings(max_examples=60, deadline=None)
    def test_memoized_simplify_preserves_semantics(self, term, model):
        with simplify_memo():
            assert evaluate(simplify(term), model) == evaluate(term, model)
