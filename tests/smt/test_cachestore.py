"""Tests for the persistent solver-cache store (:mod:`repro.smt.cachestore`).

Contracts: the wire format re-interns terms exactly (hash-consing makes
round-tripped conjuncts the *same* objects); a saved store warm-starts a
fresh cache to identical verdicts; version and fingerprint mismatches
invalidate the whole store; corruption loses at most one shard.
"""

from __future__ import annotations

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt import builder as b
from repro.smt.cache import CachedVerdict, SolverCache
from repro.smt.cachestore import (
    FORMAT_VERSION,
    CacheStore,
    entry_from_wire,
    entry_to_wire,
    export_wire_entries,
    fingerprint_from_wire,
    fingerprint_to_wire,
    merge_wire_entries,
    term_from_wire,
    term_to_wire,
)
from repro.smt.evalmodel import Model
from repro.smt.solver import PortfolioSolver, SolverConfig

WIDTH = 8
VALUE = st.integers(min_value=0, max_value=(1 << WIDTH) - 1)


def _leaf_terms(names=("x", "y", "z")):
    return st.one_of(
        VALUE.map(lambda v: b.bv_const(v, WIDTH)),
        st.sampled_from(names).map(lambda n: b.bv_var(n, WIDTH)),
    )


@st.composite
def bv_terms(draw, max_depth=3):
    depth = draw(st.integers(min_value=0, max_value=max_depth))
    if depth == 0:
        return draw(_leaf_terms())
    op = draw(st.sampled_from([b.add, b.sub, b.mul, b.bvand, b.bvor, b.bvxor]))
    return op(
        draw(bv_terms(max_depth=depth - 1)), draw(bv_terms(max_depth=depth - 1))
    )


@st.composite
def constraint_systems(draw):
    comparisons = st.sampled_from([b.ult, b.ule, b.eq, b.ne, b.ugt, b.uge])
    count = draw(st.integers(min_value=1, max_value=3))
    return [
        draw(comparisons)(draw(bv_terms()), draw(bv_terms()))
        for _ in range(count)
    ]


class TestTermWireFormat:
    @given(term=bv_terms())
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_reinterns_the_identical_term(self, term):
        assert term_from_wire(term_to_wire(term)) is term

    @given(system=constraint_systems())
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_survives_json(self, system):
        for constraint in system:
            wire = json.loads(json.dumps(term_to_wire(constraint)))
            assert term_from_wire(wire) is constraint

    def test_structural_leaves_roundtrip(self):
        for term in (
            b.bv_const(255, 8),
            b.bv_var("inp[3]", 32),
            b.TRUE,
            b.FALSE,
            b.bool_var("flag"),
            b.zext(b.bv_var("w", 16), 64),
            b.extract(b.bv_var("w", 32), 15, 8),
            b.ite(
                b.ult(b.bv_var("a", 8), b.bv_const(4, 8)),
                b.bv_var("a", 8),
                b.bv_const(0, 8),
            ),
        ):
            assert term_from_wire(json.loads(json.dumps(term_to_wire(term)))) is term


class TestFingerprintWire:
    def test_solver_fingerprint_survives_json(self):
        fingerprint = SolverConfig().fingerprint()
        wire = json.loads(json.dumps(fingerprint_to_wire(fingerprint)))
        assert fingerprint_from_wire(wire) == fingerprint

    def test_malformed_fingerprint_is_rejected(self):
        with pytest.raises(ValueError):
            fingerprint_from_wire("not-a-list")


class TestEntryWire:
    def test_sat_entry_roundtrip(self):
        x = b.bv_var("v000", 32)
        conjuncts = (b.ult(x, b.bv_const(10, 32)),)
        verdict = CachedVerdict(
            status="sat", canonical_model=Model({"v000": 3}), reason="sampling"
        )
        wire = json.loads(json.dumps(entry_to_wire(conjuncts, verdict)))
        back_conjuncts, back_verdict = entry_from_wire(wire)
        assert back_conjuncts == conjuncts
        assert back_verdict.status == "sat"
        assert back_verdict.canonical_model.as_dict() == {"v000": 3}
        assert back_verdict.reason == "sampling"

    def test_unsat_entry_roundtrip(self):
        conjuncts = (b.FALSE,)
        verdict = CachedVerdict(status="unsat", canonical_model=None, reason="x")
        _, back = entry_from_wire(entry_to_wire(conjuncts, verdict))
        assert back.status == "unsat"
        assert back.canonical_model is None


def _warmed_cache(systems):
    """Solve ``systems`` through a fresh cache; returns (cache, results)."""
    cache = SolverCache()
    solver = PortfolioSolver(cache=cache)
    return cache, [solver.check(system) for system in systems]


_SYSTEMS = [
    [b.ult(b.bv_var("x", 32), b.bv_var("y", 32))],
    [
        b.ugt(
            b.mul(b.zext(b.bv_var("w", 16), 32), b.zext(b.bv_var("h", 16), 32)),
            b.bv_const(0xFFFF, 32),
        )
    ],
    [b.eq(b.bv_var("n", 8), b.bv_const(7, 8))],
]


def _total_entries(cache):
    """Entries across both granularities (whole-query + component)."""
    return len(cache) + cache.component_count()


class TestCacheStoreRoundTrip:
    def test_save_then_load_restores_every_entry(self, tmp_path):
        fingerprint = SolverConfig().fingerprint()
        cache, _ = _warmed_cache(_SYSTEMS)
        store = CacheStore(str(tmp_path))
        saved = store.save(cache, fingerprint)
        assert saved == _total_entries(cache) > 0

        fresh = SolverCache()
        loaded = store.load(fresh, fingerprint)
        assert loaded == saved
        assert len(fresh) == len(cache)
        assert fresh.component_count() == cache.component_count()
        assert fresh.stats.merged == loaded

    def test_warm_started_cache_answers_from_cache(self, tmp_path):
        fingerprint = SolverConfig().fingerprint()
        cache, cold_results = _warmed_cache(_SYSTEMS)
        CacheStore(str(tmp_path)).save(cache, fingerprint)

        fresh = SolverCache()
        CacheStore(str(tmp_path)).load(fresh, fingerprint)
        solver = PortfolioSolver(cache=fresh)
        for system, cold in zip(_SYSTEMS, cold_results):
            warm = solver.check(system)
            assert warm.status == cold.status
            assert warm.reason == "cache"
        assert fresh.stats.hits == len(_SYSTEMS)

    def test_save_filters_foreign_fingerprints(self, tmp_path):
        fingerprint = SolverConfig().fingerprint()
        cache, _ = _warmed_cache(_SYSTEMS[:1])
        x = b.bv_var("v000", 8)
        cache.merge_canonical(
            ("other-config",),
            (b.ult(x, b.bv_const(3, 8)),),
            CachedVerdict(status="sat", canonical_model=Model({"v000": 0}), reason=""),
        )
        saved = CacheStore(str(tmp_path)).save(cache, fingerprint)
        assert saved == _total_entries(cache) - 1


class TestStoreInvalidation:
    def test_fingerprint_mismatch_is_a_cold_start(self, tmp_path):
        cache, _ = _warmed_cache(_SYSTEMS[:1])
        store = CacheStore(str(tmp_path))
        store.save(cache, SolverConfig().fingerprint())
        other = SolverConfig(heuristic_max_checks=1).fingerprint()
        assert store.load(SolverCache(), other) == 0

    def test_version_mismatch_is_a_cold_start(self, tmp_path):
        fingerprint = SolverConfig().fingerprint()
        cache, _ = _warmed_cache(_SYSTEMS[:1])
        store = CacheStore(str(tmp_path))
        store.save(cache, fingerprint)
        meta_path = tmp_path / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["version"] = FORMAT_VERSION + 1
        meta_path.write_text(json.dumps(meta))
        assert store.load(SolverCache(), fingerprint) == 0

    def test_missing_store_is_a_cold_start(self, tmp_path):
        assert CacheStore(str(tmp_path / "nope")).load(
            SolverCache(), SolverConfig().fingerprint()
        ) == 0

    def test_corrupt_shard_loses_only_that_shard(self, tmp_path):
        fingerprint = SolverConfig().fingerprint()
        cache, _ = _warmed_cache(_SYSTEMS)
        store = CacheStore(str(tmp_path))
        saved = store.save(cache, fingerprint)
        shard_files = sorted(tmp_path.glob("shard-*.json"))
        assert shard_files
        clobbered = shard_files[0]
        lost = len(json.loads(clobbered.read_text()))
        clobbered.write_text("{ not json")
        loaded = store.load(SolverCache(), fingerprint)
        assert loaded == saved - lost

    def test_corrupt_meta_is_a_cold_start(self, tmp_path):
        fingerprint = SolverConfig().fingerprint()
        cache, _ = _warmed_cache(_SYSTEMS[:1])
        store = CacheStore(str(tmp_path))
        store.save(cache, fingerprint)
        (tmp_path / "meta.json").write_text("][")
        assert store.load(SolverCache(), fingerprint) == 0


class TestWireEntryExchange:
    """The process backend's delta path: export from one cache, merge into
    another, excluding already-shipped keys."""

    def test_export_merge_roundtrip(self):
        fingerprint = SolverConfig().fingerprint()
        source, _ = _warmed_cache(_SYSTEMS)
        wire, keys = export_wire_entries(source)
        assert len(wire) == len(keys) == _total_entries(source)

        target = SolverCache()
        merged = merge_wire_entries(target, wire)
        assert sorted(map(str, merged)) == sorted(map(str, keys))
        assert len(target) == len(source)
        assert target.component_count() == source.component_count()

    def test_exclude_skips_already_shipped_keys(self):
        source, _ = _warmed_cache(_SYSTEMS)
        _, keys = export_wire_entries(source)
        shipped = set(keys[:1])
        wire, rest = export_wire_entries(source, exclude=shipped)
        assert len(wire) == _total_entries(source) - 1
        assert not shipped.intersection(rest)

    def test_malformed_wire_entries_are_skipped(self):
        target = SolverCache()
        good_source, _ = _warmed_cache(_SYSTEMS[:1])
        wire, _ = export_wire_entries(good_source)
        good = len(wire)
        wire.append({"f": [], "c": "garbage", "s": "sat"})
        merged = merge_wire_entries(target, wire)
        assert len(merged) == good


class TestCampaignWarmStart:
    def test_second_campaign_run_warm_starts_from_the_first(self, tmp_path):
        from repro.core.campaign import CampaignConfig, run_campaign

        config = lambda: CampaignConfig(
            jobs=1, applications=["vlc"], cache_dir=str(tmp_path)
        )
        cold = run_campaign(config())
        warm = run_campaign(config())
        assert cold.cache_loaded == 0
        assert cold.cache_saved > 0
        assert warm.cache_loaded == cold.cache_saved
        assert warm.cache_stats.hit_rate() > cold.cache_stats.hit_rate()
        assert warm.classifications() == cold.classifications()

    def test_no_save_cache_leaves_the_store_untouched(self, tmp_path):
        from repro.core.campaign import CampaignConfig, run_campaign

        directory = str(tmp_path)
        run_campaign(
            CampaignConfig(jobs=1, applications=["vlc"], cache_dir=directory)
        )
        before = sorted(os.listdir(directory))
        stamp = (tmp_path / "meta.json").read_bytes()
        run_campaign(
            CampaignConfig(
                jobs=1,
                applications=["vlc"],
                cache_dir=directory,
                save_cache=False,
            )
        )
        assert sorted(os.listdir(directory)) == before
        assert (tmp_path / "meta.json").read_bytes() == stamp
