"""Tests for the persistent solver-cache store (:mod:`repro.smt.cachestore`).

Contracts: the wire format re-interns terms exactly (hash-consing makes
round-tripped conjuncts the *same* objects); a saved store warm-starts a
fresh cache to identical verdicts; version and fingerprint mismatches
invalidate the whole store; corruption loses at most one shard.
"""

from __future__ import annotations

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt import builder as b
from repro.smt.bitblast import BitBlaster
from repro.smt.cache import CachedVerdict, SolverCache
from repro.smt.cachestore import (
    FORMAT_VERSION,
    CacheStore,
    core_from_wire,
    core_to_wire,
    entry_from_wire,
    entry_to_wire,
    export_wire_entries,
    fingerprint_from_wire,
    fingerprint_to_wire,
    merge_wire_entries,
    skeleton_from_wire,
    skeleton_to_wire,
    term_from_wire,
    term_to_wire,
)
from repro.smt.evalmodel import Model
from repro.smt.solver import PortfolioSolver, SolverConfig

WIDTH = 8
VALUE = st.integers(min_value=0, max_value=(1 << WIDTH) - 1)


def _leaf_terms(names=("x", "y", "z")):
    return st.one_of(
        VALUE.map(lambda v: b.bv_const(v, WIDTH)),
        st.sampled_from(names).map(lambda n: b.bv_var(n, WIDTH)),
    )


@st.composite
def bv_terms(draw, max_depth=3):
    depth = draw(st.integers(min_value=0, max_value=max_depth))
    if depth == 0:
        return draw(_leaf_terms())
    op = draw(st.sampled_from([b.add, b.sub, b.mul, b.bvand, b.bvor, b.bvxor]))
    return op(
        draw(bv_terms(max_depth=depth - 1)), draw(bv_terms(max_depth=depth - 1))
    )


@st.composite
def constraint_systems(draw):
    comparisons = st.sampled_from([b.ult, b.ule, b.eq, b.ne, b.ugt, b.uge])
    count = draw(st.integers(min_value=1, max_value=3))
    return [
        draw(comparisons)(draw(bv_terms()), draw(bv_terms()))
        for _ in range(count)
    ]


class TestTermWireFormat:
    @given(term=bv_terms())
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_reinterns_the_identical_term(self, term):
        assert term_from_wire(term_to_wire(term)) is term

    @given(system=constraint_systems())
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_survives_json(self, system):
        for constraint in system:
            wire = json.loads(json.dumps(term_to_wire(constraint)))
            assert term_from_wire(wire) is constraint

    def test_structural_leaves_roundtrip(self):
        for term in (
            b.bv_const(255, 8),
            b.bv_var("inp[3]", 32),
            b.TRUE,
            b.FALSE,
            b.bool_var("flag"),
            b.zext(b.bv_var("w", 16), 64),
            b.extract(b.bv_var("w", 32), 15, 8),
            b.ite(
                b.ult(b.bv_var("a", 8), b.bv_const(4, 8)),
                b.bv_var("a", 8),
                b.bv_const(0, 8),
            ),
        ):
            assert term_from_wire(json.loads(json.dumps(term_to_wire(term)))) is term


class TestFingerprintWire:
    def test_solver_fingerprint_survives_json(self):
        fingerprint = SolverConfig().fingerprint()
        wire = json.loads(json.dumps(fingerprint_to_wire(fingerprint)))
        assert fingerprint_from_wire(wire) == fingerprint

    def test_malformed_fingerprint_is_rejected(self):
        with pytest.raises(ValueError):
            fingerprint_from_wire("not-a-list")


class TestEntryWire:
    def test_sat_entry_roundtrip(self):
        x = b.bv_var("v000", 32)
        conjuncts = (b.ult(x, b.bv_const(10, 32)),)
        verdict = CachedVerdict(
            status="sat", canonical_model=Model({"v000": 3}), reason="sampling"
        )
        wire = json.loads(json.dumps(entry_to_wire(conjuncts, verdict)))
        back_conjuncts, back_verdict = entry_from_wire(wire)
        assert back_conjuncts == conjuncts
        assert back_verdict.status == "sat"
        assert back_verdict.canonical_model.as_dict() == {"v000": 3}
        assert back_verdict.reason == "sampling"

    def test_unsat_entry_roundtrip(self):
        conjuncts = (b.FALSE,)
        verdict = CachedVerdict(status="unsat", canonical_model=None, reason="x")
        _, back = entry_from_wire(entry_to_wire(conjuncts, verdict))
        assert back.status == "unsat"
        assert back.canonical_model is None


def _warmed_cache(systems):
    """Solve ``systems`` through a fresh cache; returns (cache, results)."""
    cache = SolverCache()
    solver = PortfolioSolver(cache=cache)
    return cache, [solver.check(system) for system in systems]


_SYSTEMS = [
    [b.ult(b.bv_var("x", 32), b.bv_var("y", 32))],
    [
        b.ugt(
            b.mul(b.zext(b.bv_var("w", 16), 32), b.zext(b.bv_var("h", 16), 32)),
            b.bv_const(0xFFFF, 32),
        )
    ],
    [b.eq(b.bv_var("n", 8), b.bv_const(7, 8))],
]


def _total_entries(cache):
    """Artifacts across all four kinds (query, component, core, cnf)."""
    return (
        len(cache)
        + cache.component_count()
        + cache.core_count()
        + cache.cnf_count()
    )


class TestCacheStoreRoundTrip:
    def test_save_then_load_restores_every_entry(self, tmp_path):
        fingerprint = SolverConfig().fingerprint()
        cache, _ = _warmed_cache(_SYSTEMS)
        store = CacheStore(str(tmp_path))
        saved = store.save(cache, fingerprint)
        assert saved == _total_entries(cache) > 0

        fresh = SolverCache()
        loaded = store.load(fresh, fingerprint)
        assert loaded == saved
        assert len(fresh) == len(cache)
        assert fresh.component_count() == cache.component_count()
        assert fresh.stats.merged == loaded

    def test_warm_started_cache_answers_from_cache(self, tmp_path):
        fingerprint = SolverConfig().fingerprint()
        cache, cold_results = _warmed_cache(_SYSTEMS)
        CacheStore(str(tmp_path)).save(cache, fingerprint)

        fresh = SolverCache()
        CacheStore(str(tmp_path)).load(fresh, fingerprint)
        solver = PortfolioSolver(cache=fresh)
        for system, cold in zip(_SYSTEMS, cold_results):
            warm = solver.check(system)
            assert warm.status == cold.status
            assert warm.reason == "cache"
        assert fresh.stats.hits == len(_SYSTEMS)

    def test_save_filters_foreign_fingerprints(self, tmp_path):
        fingerprint = SolverConfig().fingerprint()
        cache, _ = _warmed_cache(_SYSTEMS[:1])
        x = b.bv_var("v000", 8)
        cache.merge_canonical(
            ("other-config",),
            (b.ult(x, b.bv_const(3, 8)),),
            CachedVerdict(status="sat", canonical_model=Model({"v000": 0}), reason=""),
        )
        saved = CacheStore(str(tmp_path)).save(cache, fingerprint)
        assert saved == _total_entries(cache) - 1


class TestStoreInvalidation:
    def test_fingerprint_mismatch_is_a_cold_start(self, tmp_path):
        cache, _ = _warmed_cache(_SYSTEMS[:1])
        store = CacheStore(str(tmp_path))
        store.save(cache, SolverConfig().fingerprint())
        other = SolverConfig(heuristic_max_checks=1).fingerprint()
        assert store.load(SolverCache(), other) == 0

    def test_version_mismatch_is_a_cold_start(self, tmp_path):
        fingerprint = SolverConfig().fingerprint()
        cache, _ = _warmed_cache(_SYSTEMS[:1])
        store = CacheStore(str(tmp_path))
        store.save(cache, fingerprint)
        meta_path = tmp_path / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["version"] = FORMAT_VERSION + 1
        meta_path.write_text(json.dumps(meta))
        assert store.load(SolverCache(), fingerprint) == 0

    def test_missing_store_is_a_cold_start(self, tmp_path):
        assert CacheStore(str(tmp_path / "nope")).load(
            SolverCache(), SolverConfig().fingerprint()
        ) == 0

    def test_corrupt_shard_loses_only_that_shard(self, tmp_path):
        fingerprint = SolverConfig().fingerprint()
        cache, _ = _warmed_cache(_SYSTEMS)
        store = CacheStore(str(tmp_path))
        saved = store.save(cache, fingerprint)
        shard_files = sorted(tmp_path.glob("shard-*.json"))
        assert shard_files
        clobbered = shard_files[0]
        lost = len(json.loads(clobbered.read_text()))
        clobbered.write_text("{ not json")
        loaded = store.load(SolverCache(), fingerprint)
        assert loaded == saved - lost

    def test_corrupt_meta_is_a_cold_start(self, tmp_path):
        fingerprint = SolverConfig().fingerprint()
        cache, _ = _warmed_cache(_SYSTEMS[:1])
        store = CacheStore(str(tmp_path))
        store.save(cache, fingerprint)
        (tmp_path / "meta.json").write_text("][")
        assert store.load(SolverCache(), fingerprint) == 0


class TestWireEntryExchange:
    """The process backend's delta path: export from one cache, merge into
    another, excluding already-shipped keys."""

    def test_export_merge_roundtrip(self):
        fingerprint = SolverConfig().fingerprint()
        source, _ = _warmed_cache(_SYSTEMS)
        wire, keys = export_wire_entries(source)
        assert len(wire) == len(keys) == _total_entries(source)

        target = SolverCache()
        merged = merge_wire_entries(target, wire)
        assert sorted(map(str, merged)) == sorted(map(str, keys))
        assert len(target) == len(source)
        assert target.component_count() == source.component_count()

    def test_exclude_skips_already_shipped_keys(self):
        source, _ = _warmed_cache(_SYSTEMS)
        _, keys = export_wire_entries(source)
        shipped = set(keys[:1])
        wire, rest = export_wire_entries(source, exclude=shipped)
        assert len(wire) == _total_entries(source) - 1
        assert not shipped.intersection(rest)

    def test_malformed_wire_entries_are_skipped(self):
        target = SolverCache()
        good_source, _ = _warmed_cache(_SYSTEMS[:1])
        wire, _ = export_wire_entries(good_source)
        good = len(wire)
        wire.append({"f": [], "c": "garbage", "s": "sat"})
        merged = merge_wire_entries(target, wire)
        assert len(merged) == good


class TestConcurrentWriters:
    """The lost-update regression: saving is merge-on-save, so two writers
    sharing one store dir must both survive — the union of their
    (non-UNKNOWN) entries is what a fresh load sees."""

    def test_two_writers_saving_disjoint_entries_both_survive(self, tmp_path):
        fingerprint = SolverConfig().fingerprint()
        cache_a, _ = _warmed_cache(_SYSTEMS[:1])
        cache_b, _ = _warmed_cache(_SYSTEMS[1:])

        CacheStore(str(tmp_path)).save(cache_a, fingerprint)
        CacheStore(str(tmp_path)).save(cache_b, fingerprint)

        union = SolverCache()
        CacheStore(str(tmp_path)).load(union, fingerprint)
        assert len(union) >= max(len(cache_a), len(cache_b))
        for source in (cache_a, cache_b):
            for key, _conjuncts, _verdict in source.entries_snapshot():
                assert key in dict(
                    (k, v) for k, _c, v in union.entries_snapshot()
                ), "a writer's entries were clobbered by the later save"
        assert len(union) == len(
            {
                key
                for source in (cache_a, cache_b)
                for key, _c, _v in source.entries_snapshot()
            }
        )


class TestCampaignWarmStart:
    def test_second_campaign_run_warm_starts_from_the_first(self, tmp_path):
        from repro.core.campaign import CampaignConfig, run_campaign

        config = lambda: CampaignConfig(
            jobs=1, applications=["vlc"], cache_dir=str(tmp_path)
        )
        cold = run_campaign(config())
        warm = run_campaign(config())
        assert cold.cache_loaded == 0
        assert cold.cache_saved > 0
        assert warm.cache_loaded == cold.cache_saved
        assert warm.cache_stats.hit_rate() > cold.cache_stats.hit_rate()
        assert warm.classifications() == cold.classifications()

    def test_no_save_cache_leaves_the_store_untouched(self, tmp_path):
        from repro.core.campaign import CampaignConfig, run_campaign

        directory = str(tmp_path)
        run_campaign(
            CampaignConfig(jobs=1, applications=["vlc"], cache_dir=directory)
        )
        before = sorted(os.listdir(directory))
        stamp = (tmp_path / "meta.json").read_bytes()
        run_campaign(
            CampaignConfig(
                jobs=1,
                applications=["vlc"],
                cache_dir=directory,
                save_cache=False,
            )
        )
        assert sorted(os.listdir(directory)) == before
        assert (tmp_path / "meta.json").read_bytes() == stamp


class TestCoreWire:
    """Canonical UNSAT cores on the wire (kind ``core``, tag ``"u"``)."""

    @given(system=constraint_systems())
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_reinterns_the_core(self, system):
        wire = json.loads(json.dumps(core_to_wire(tuple(system))))
        back = core_from_wire(wire)
        assert set(back) == set(system)  # hash-consing: identical objects

    def test_wire_is_order_independent(self):
        """A core is a set; its wire (and so its content key) must not
        depend on the order the derivation discovered the conjuncts in."""
        x = b.bv_var("v000", 8)
        p = b.ult(x, b.bv_const(3, 8))
        q = b.ugt(x, b.bv_const(250, 8))
        assert core_to_wire((p, q)) == core_to_wire((q, p))


class TestSkeletonWire:
    """Blasted-CNF skeletons on the wire (kind ``cnf``, tag ``"b"``)."""

    @given(system=constraint_systems())
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_rebuilds_the_identical_cnf(self, system):
        blaster = BitBlaster()
        for conjunct in system:
            blaster.assert_constraint(conjunct)
        skeleton = blaster.skeleton()
        wire = json.loads(json.dumps(skeleton_to_wire(tuple(system), skeleton)))
        back_conjuncts, back_skeleton = skeleton_from_wire(wire)
        assert back_conjuncts == tuple(system)
        assert back_skeleton == skeleton
        rebuilt = back_skeleton.build_cnf()
        assert rebuilt.num_vars == blaster.cnf.num_vars
        assert tuple(rebuilt.clauses) == tuple(blaster.cnf.clauses)


def _synthetic_entries(cache, fingerprint, count, offset=0):
    """Populate ``cache`` with ``count`` distinct single-conjunct verdicts."""
    x = b.bv_var("v000", 16)
    for value in range(offset, offset + count):
        cache.merge_canonical(
            fingerprint,
            (b.eq(x, b.bv_const(value, 16)),),
            CachedVerdict(
                status="sat",
                canonical_model=Model({"v000": value}),
                reason="synthetic",
            ),
        )


class TestCoreAndSkeletonPersistence:
    def test_core_roundtrips_through_the_store(self, tmp_path):
        fingerprint = SolverConfig().fingerprint()
        cache = SolverCache()
        x = b.bv_var("v000", 8)
        core = (b.ult(x, b.bv_const(3, 8)), b.ugt(x, b.bv_const(250, 8)))
        assert cache.add_core(fingerprint, core)
        store = CacheStore(str(tmp_path))
        assert store.save(cache, fingerprint) == 1

        fresh = SolverCache()
        assert store.load(fresh, fingerprint) == 1
        assert fresh.core_count() == 1
        [(back_fingerprint, back_core)] = fresh.cores_snapshot()
        assert back_fingerprint == fingerprint
        assert set(back_core) == set(core)

    def test_skeleton_roundtrips_through_the_store(self, tmp_path):
        fingerprint = SolverConfig().fingerprint()
        cache = SolverCache()
        x = b.bv_var("v000", 8)
        conjuncts = (b.eq(b.bvand(x, b.bv_const(7, 8)), b.bv_const(5, 8)),)
        blaster = BitBlaster()
        for conjunct in conjuncts:
            blaster.assert_constraint(conjunct)
        skeleton = blaster.skeleton()
        assert cache.store_cnf(conjuncts, skeleton)
        store = CacheStore(str(tmp_path))
        assert store.save(cache, fingerprint) == 1

        fresh = SolverCache()
        assert store.load(fresh, fingerprint) == 1
        assert fresh.cnf_count() == 1
        assert fresh.lookup_cnf(conjuncts) == skeleton
        assert fresh.stats.cnf_hits == 1

    def test_foreign_fingerprint_cores_are_not_saved(self, tmp_path):
        fingerprint = SolverConfig().fingerprint()
        cache = SolverCache()
        x = b.bv_var("v000", 8)
        cache.add_core(("other-config",), (b.ult(x, b.bv_const(1, 8)),))
        assert CacheStore(str(tmp_path)).save(cache, fingerprint) == 0


class TestShardLayoutChanges:
    def test_shrinking_shard_count_removes_orphans(self, tmp_path):
        """shard-NN.json files beyond the new layout's count must go; a
        ghost shard would resurrect stale entries on a later wide load."""
        fingerprint = SolverConfig().fingerprint()
        cache = SolverCache()
        _synthetic_entries(cache, fingerprint, 48)
        CacheStore(str(tmp_path), shard_count=16).save(cache, fingerprint)
        assert len(list(tmp_path.glob("shard-*.json"))) > 1

        narrow_cache = SolverCache()
        _synthetic_entries(narrow_cache, fingerprint, 1, offset=48)
        narrow = CacheStore(str(tmp_path), shard_count=1)
        assert narrow.save(narrow_cache, fingerprint) == 49
        assert sorted(p.name for p in tmp_path.glob("shard-*.json")) == [
            "shard-00.json"
        ]
        fresh = SolverCache()
        assert narrow.load(fresh, fingerprint) == 49


def _mp_save_synthetic(cache_dir, index, barrier):
    from repro.smt.cache import SolverCache
    from repro.smt.cachestore import CacheStore
    from repro.smt.solver import SolverConfig
    import test_cachestore as this_module

    fingerprint = SolverConfig().fingerprint()
    cache = SolverCache()
    this_module._synthetic_entries(cache, fingerprint, 3, offset=index * 3)
    barrier.wait()
    CacheStore(str(cache_dir)).save(cache, fingerprint)


class TestConcurrentProcessWriters:
    def test_parallel_saves_lose_no_entries(self, tmp_path):
        """The stress form of the lost-update regression: real processes
        racing through one --cache-dir; the union must survive."""
        import multiprocessing

        ctx = multiprocessing.get_context("spawn")
        writer_count = 4
        barrier = ctx.Barrier(writer_count)
        processes = [
            ctx.Process(
                target=_mp_save_synthetic, args=(str(tmp_path), i, barrier)
            )
            for i in range(writer_count)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=120)
            assert process.exitcode == 0

        union = SolverCache()
        loaded = CacheStore(str(tmp_path)).load(
            union, SolverConfig().fingerprint()
        )
        assert loaded == len(union) == writer_count * 3
