"""Tests for incremental solver sessions (:class:`repro.smt.solver.SolverSession`).

The hard invariant: a session produces the same SAT/UNSAT/UNKNOWN verdicts
as fresh queries over the same conjunctions — push/pop, learned-clause
retention and the persistent bit-blaster are transparent to classification.
Also covers the component-granularity cache layer, the stage provenance of
cached verdicts, and the UNKNOWN-degradation contract (budget exhaustion
never crashes and is never persisted).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt import builder as b
from repro.smt.cache import SolverCache
from repro.smt.cachestore import CacheStore
from repro.smt.sampler import SamplerConfig
from repro.smt.solver import (
    PortfolioSolver,
    SolverConfig,
    SolverStatus,
)

WIDTH = 16


def _mixing_chain(tag=""):
    """An enforcement-shaped chain that reaches the complete backend."""
    w = b.bv_var(f"w{tag}", WIDTH)
    h = b.bv_var(f"h{tag}", WIDTH)
    beta = b.ugt(
        b.mul(b.zext(w, 32), b.zext(h, 32)), b.bv_const(0x00FFFFFF, 32)
    )
    deltas = [
        b.ult(w, b.bv_const(0xC000, WIDTH)),
        b.eq(b.bvand(w, b.bv_const(7, WIDTH)), b.bv_const(5, WIDTH)),
        b.eq(b.bvand(h, b.bv_const(3, WIDTH)), b.bv_const(2, WIDTH)),
        # Parity contradiction with the alignment check two steps up —
        # invisible to interval propagation, so only CDCL proves it.
        b.eq(b.bvand(w, b.bv_const(1, WIDTH)), b.bv_const(0, WIDTH)),
    ]
    return beta, deltas


def _stress_config(**overrides):
    """Tiny incomplete-layer budgets: route SAT queries to the CDCL backend."""
    defaults = dict(
        sampler=SamplerConfig(
            random_attempts_per_sample=3,
            hill_climb_steps=2,
            perturbation_attempts=2,
            seed=0,
        ),
        heuristic_max_checks=4,
        bitblast_max_conflicts=100_000,
    )
    defaults.update(overrides)
    return SolverConfig(**defaults)


class TestSessionSemantics:
    def test_push_check_matches_fresh_check(self):
        solver = PortfolioSolver()
        x = b.bv_var("x", WIDTH)
        constraint = b.ult(x, b.bv_const(10, WIDTH))
        session = solver.open_session()
        session.push(constraint)
        session_result = session.check()
        fresh_result = PortfolioSolver().check([constraint])
        assert session_result.status == fresh_result.status == SolverStatus.SAT
        assert session_result.model["x"] < 10

    def test_empty_session_is_trivially_sat(self):
        session = PortfolioSolver().open_session()
        result = session.check()
        assert result.is_sat
        assert result.reason == "simplify"

    def test_pop_restores_the_previous_frame(self):
        solver = PortfolioSolver()
        x = b.bv_var("x", WIDTH)
        session = solver.open_session()
        session.push(b.ult(x, b.bv_const(10, WIDTH)))
        session.push(b.ugt(x, b.bv_const(20, WIDTH)))
        assert session.check().is_unsat
        session.pop()
        assert session.check().is_sat
        assert len(session.conjuncts) == 1

    def test_pop_on_empty_session_raises(self):
        with pytest.raises(IndexError):
            PortfolioSolver().open_session().pop()

    def test_push_splits_conjunctions(self):
        x = b.bv_var("x", WIDTH)
        session = PortfolioSolver().open_session()
        session.push(
            b.band(
                b.ult(x, b.bv_const(10, WIDTH)),
                b.ugt(x, b.bv_const(2, WIDTH)),
            )
        )
        assert len(session.conjuncts) == 2
        session.pop()
        assert session.conjuncts == ()

    def test_repush_after_pop_reuses_blasted_cnf(self):
        """Popping and re-pushing the same constraint costs no new CNF."""
        solver = PortfolioSolver(_stress_config())
        beta, deltas = _mixing_chain("repush")
        session = solver.open_session()
        session.push(beta)
        for delta in deltas[:3]:
            session.push(delta)
        result = session.check()
        assert result.is_sat
        assert result.reason == "bitblast"
        assert session._blaster is not None
        vars_before = session._blaster.cnf.num_vars
        session.pop()
        session.push(deltas[2])
        assert session.check().is_sat
        assert session._blaster.cnf.num_vars == vars_before


class TestSessionParity:
    def test_chain_statuses_match_fresh_queries(self):
        """The enforcement access pattern: grow the conjunction one branch
        constraint at a time; session and fresh verdicts agree at every
        step, including the CDCL-proved UNSAT tail."""
        beta, deltas = _mixing_chain("parity")
        session_solver = PortfolioSolver(_stress_config())
        fresh_solver = PortfolioSolver(_stress_config())
        session = session_solver.open_session()

        session.push(beta)
        constraints = [beta]
        session_statuses = [session.check().status]
        fresh_statuses = [fresh_solver.check(constraints).status]
        for delta in deltas:
            session.push(delta)
            constraints.append(delta)
            session_statuses.append(session.check().status)
            fresh_statuses.append(fresh_solver.check(constraints).status)
        assert session_statuses == fresh_statuses
        assert session_statuses[-1] == SolverStatus.UNSAT

    def test_session_models_satisfy_the_conjunction(self):
        beta, deltas = _mixing_chain("models")
        solver = PortfolioSolver(_stress_config())
        session = solver.open_session()
        session.push(beta)
        for delta in deltas[:3]:
            session.push(delta)
            result = session.check()
            assert result.is_sat
            from repro.smt.evalmodel import satisfies

            assert all(satisfies(c, result.model) for c in session.conjuncts)

    @given(bounds=st.lists(st.integers(min_value=1, max_value=200), min_size=1, max_size=5))
    @settings(max_examples=30, deadline=None)
    def test_random_bound_chains_agree_with_fresh(self, bounds):
        x = b.bv_var("x", WIDTH)
        session = PortfolioSolver().open_session()
        fresh = PortfolioSolver()
        constraints = []
        for bound in bounds:
            constraint = b.ult(x, b.bv_const(bound, WIDTH))
            session.push(constraint)
            constraints.append(constraint)
            assert session.check().status == fresh.check(constraints).status

    def test_session_with_shared_cache_matches_uncached_session(self):
        beta, deltas = _mixing_chain("cached")
        cached_solver = PortfolioSolver(_stress_config(), cache=SolverCache())
        plain_solver = PortfolioSolver(_stress_config())
        cached = cached_solver.open_session()
        plain = plain_solver.open_session()
        cached.push(beta)
        plain.push(beta)
        for delta in deltas:
            cached.push(delta)
            plain.push(delta)
            assert cached.check().status == plain.check().status


class TestComponentCache:
    def test_shared_component_hits_across_different_queries(self):
        """Two whole queries that differ but share a connected component
        answer the shared part from the component cache."""
        cache = SolverCache()
        solver = PortfolioSolver(cache=cache)
        x, y, z = (b.bv_var(n, WIDTH) for n in ("x", "y", "z"))
        shared = b.ult(x, b.bv_const(10, WIDTH))
        first = solver.check([shared, b.ugt(y, b.bv_const(3, WIDTH))])
        assert first.is_sat
        assert cache.stats.component_stores >= 2
        hits_before = cache.stats.component_hits
        second = solver.check([shared, b.ult(z, b.bv_const(7, WIDTH))])
        assert second.is_sat
        assert cache.stats.component_hits > hits_before
        # The whole-query cache missed both times (different conjunctions).
        assert cache.stats.hits == 0

    def test_component_unsat_decides_the_whole_query(self):
        cache = SolverCache()
        solver = PortfolioSolver(cache=cache)
        x, y = b.bv_var("x", WIDTH), b.bv_var("y", WIDTH)
        contradiction = b.band(
            b.ult(x, b.bv_const(5, WIDTH)), b.ugt(x, b.bv_const(9, WIDTH))
        )
        satisfiable = b.ult(y, b.bv_const(3, WIDTH))
        assert solver.check([contradiction]).is_unsat
        result = solver.check([satisfiable, contradiction])
        assert result.is_unsat
        # The contradiction component was answered from the cache.
        assert cache.stats.component_hits >= 1

    def test_alpha_equivalent_sibling_components_share_verdicts(self):
        """Sibling sites constrain differently named fields with identical
        structure; their components share one canonical entry."""
        cache = SolverCache()
        solver = PortfolioSolver(cache=cache)
        w, h, p, q = (b.bv_var(n, WIDTH) for n in ("w", "h", "p", "q"))
        first = solver.check(
            [b.ult(w, b.bv_const(9, WIDTH)), b.ugt(h, b.bv_const(2, WIDTH))]
        )
        hits_before = cache.stats.component_hits
        second = solver.check(
            [b.ult(p, b.bv_const(9, WIDTH)), b.ugt(q, b.bv_const(2, WIDTH))]
        )
        assert first.status == second.status == SolverStatus.SAT
        # Alpha-equivalence already unifies the *whole* queries here; the
        # point is that component entries unified too (no extra stores).
        assert cache.stats.component_hits >= hits_before

    def test_component_entries_round_trip_through_the_store(self, tmp_path):
        fingerprint = SolverConfig().fingerprint()
        cache = SolverCache()
        solver = PortfolioSolver(cache=cache)
        x, y = b.bv_var("x", WIDTH), b.bv_var("y", WIDTH)
        solver.check(
            [b.ult(x, b.bv_const(10, WIDTH)), b.ugt(y, b.bv_const(3, WIDTH))]
        )
        assert cache.component_count() > 0
        store = CacheStore(str(tmp_path))
        saved = store.save(cache, fingerprint)
        assert saved == len(cache) + cache.component_count()

        fresh = SolverCache()
        store.load(fresh, fingerprint)
        assert fresh.component_count() == cache.component_count()
        warm = PortfolioSolver(cache=fresh)
        hits_before = fresh.stats.component_hits
        z = b.bv_var("z", WIDTH)
        result = warm.check(
            [b.ult(x, b.bv_const(10, WIDTH)), b.ult(z, b.bv_const(5, WIDTH))]
        )
        assert result.is_sat
        assert fresh.stats.component_hits > hits_before


class TestStageProvenance:
    def test_cache_hits_report_the_deriving_stages(self):
        """A cached verdict carries the stages that derived it, so hits do
        not report empty provenance (the --json stats satellite)."""
        cache = SolverCache()
        solver = PortfolioSolver(cache=cache)
        x = b.bv_var("x", WIDTH)
        system = [b.ult(x, b.bv_const(10, WIDTH))]
        cold = solver.check(system)
        warm = solver.check(system)
        assert warm.reason == "cache"
        assert "cache" in warm.stages_tried
        # Every substantive stage the cold run tried is visible on the hit.
        for stage in cold.stages_tried:
            if stage not in ("simplify", "cache"):
                assert stage in warm.stages_tried

    def test_unsat_hits_carry_stages_too(self):
        cache = SolverCache()
        solver = PortfolioSolver(cache=cache)
        x = b.bv_var("x", WIDTH)
        system = [
            b.ult(x, b.bv_const(5, WIDTH)),
            b.ugt(x, b.bv_const(9, WIDTH)),
        ]
        assert solver.check(system).is_unsat
        warm = solver.check(system)
        assert warm.is_unsat
        assert warm.reason == "cache"
        assert "intervals" in warm.stages_tried


class TestUnknownDegradation:
    def _hard_system(self, tag="u"):
        """A conjunction only CDCL can decide: no square is 5 mod 32.

        Interval propagation cannot see the residue argument, the SAT-only
        layers cannot help an UNSAT query, and the CDCL refutation needs
        more than one conflict even under the structurally-hashed encoder
        (the mod-8 variant now falls to root propagation) — so a
        one-conflict budget exhausts and the portfolio must degrade to
        UNKNOWN, never crash.
        """
        x = b.bv_var(f"sq{tag}", 16)
        return [
            b.eq(b.bvand(b.mul(x, x), b.bv_const(31, 16)), b.bv_const(5, 16))
        ]

    def _exhausted_config(self):
        return _stress_config(bitblast_max_conflicts=1)

    def test_budget_exhaustion_classifies_unknown(self):
        solver = PortfolioSolver(self._exhausted_config())
        result = solver.check(self._hard_system())
        assert result.is_unknown
        assert result.reason == "portfolio exhausted"

    def test_session_budget_exhaustion_classifies_unknown(self):
        solver = PortfolioSolver(self._exhausted_config())
        session = solver.open_session()
        session.push(*self._hard_system("s"))
        assert session.check().is_unknown

    def test_unknown_verdicts_are_not_persisted(self, tmp_path):
        """UNKNOWN is a budget artifact: cached in-run for consistency, but
        excluded from the persistent store so future runs (bigger budgets,
        better solvers) retry the query."""
        config = self._exhausted_config()
        cache = SolverCache()
        solver = PortfolioSolver(config, cache=cache)
        assert solver.check(self._hard_system("p")).is_unknown
        # In-run: the verdict is cached (same budget -> same answer) ...
        warm = solver.check(self._hard_system("p"))
        assert warm.is_unknown
        assert warm.reason == "cache"
        assert len(cache) + cache.component_count() > 0
        # ... but no UNKNOWN *verdict* reaches the store.  The blasted-CNF
        # skeleton does — the translation is budget-independent, and a warm
        # run retries the query without re-blasting.
        store = CacheStore(str(tmp_path))
        saved = store.save(cache, config.fingerprint())
        assert saved == cache.cnf_count() > 0
        fresh = SolverCache()
        assert store.load(fresh, config.fingerprint()) == saved
        assert len(fresh) + fresh.component_count() == 0
        assert fresh.cnf_count() == cache.cnf_count()


class TestSessionBlasterIsolation:
    def _clashing_components(self, tag=""):
        """Two independent components whose component-canonical names both
        start at ``v000`` — at different widths — and which only the
        complete backend can decide (squares mod 8 are in {0, 1, 4})."""
        narrow = b.bv_var(f"cw{tag}", 16)
        wide = b.bv_var(f"cc{tag}", 32)
        return [
            b.eq(b.bvand(b.mul(narrow, narrow), b.bv_const(7, 16)), b.bv_const(1, 16)),
            b.eq(b.bvand(b.mul(wide, wide), b.bv_const(7, 32)), b.bv_const(4, 32)),
        ]

    def test_canonical_width_clash_does_not_degrade_to_unknown(self):
        """Component-canonical names restart at v000 per component; a name
        reused at a different width must not corrupt the session's
        persistent blaster (regression: the clash raised BitBlastError and
        wrongly returned UNKNOWN where the fresh path proves SAT)."""
        system = self._clashing_components("a")
        fresh = PortfolioSolver(
            _stress_config(enable_sessions=False, enable_decomposition=False)
        ).check(system)
        solver = PortfolioSolver(_stress_config(), cache=SolverCache())
        session = solver.open_session()
        session.push(*system)
        incremental = session.check()
        assert fresh.status == SolverStatus.SAT
        assert incremental.status == fresh.status

    def test_width_clash_fallback_keeps_later_checks_working(self):
        system = self._clashing_components("b")
        solver = PortfolioSolver(_stress_config(), cache=SolverCache())
        session = solver.open_session()
        session.push(*system)
        assert session.check().is_sat
        # The session stays usable after the fallback path ran.
        session.push(b.ult(b.bv_var("cwb", 16), b.bv_const(0x100, 16)))
        assert session.check().status in (SolverStatus.SAT, SolverStatus.UNKNOWN)


class TestCachePurityUnderSessions:
    def test_session_cdcl_verdicts_stay_out_of_the_shared_cache(self):
        """A verdict derived through the session's incremental CDCL depends
        on the session's private history (learned clauses, phases), so it
        must not enter the shared cache — stored entries stay a pure
        function of the canonical system."""
        beta, deltas = _mixing_chain("purity")
        cache = SolverCache()
        solver = PortfolioSolver(_stress_config(), cache=cache)
        session = solver.open_session()
        session.push(beta)
        for delta in deltas[:3]:
            session.push(delta)
        result = session.check()
        assert result.is_sat
        assert result.reason == "bitblast"
        for _key, _conjuncts, verdict in cache.entries_snapshot():
            assert "bitblast" not in verdict.stages
        for _key, _conjuncts, verdict in cache.entries_snapshot(
            kind=SolverCache.KIND_COMPONENT
        ):
            assert "bitblast" not in verdict.stages
        # A second solver sharing the cache must re-derive the query (the
        # session-derived verdict was answered, not shared).
        rederived = PortfolioSolver(_stress_config(), cache=cache).check(
            [beta] + deltas[:3]
        )
        assert rederived.is_sat
        assert rederived.reason == "bitblast"

    def test_component_hit_with_bitblast_provenance_does_not_block_store(self):
        """Provenance is not taint: a session check answered entirely from
        pure layers and (fresh-derived) cache entries is itself pure and
        must be stored, even when a hit component's stored stages mention
        'bitblast' (regression: the provenance string wrongly marked the
        derivation session-tainted)."""
        cache = SolverCache()
        fresh = PortfolioSolver(_stress_config(), cache=cache)
        x = b.bv_var("prov_x", WIDTH)
        y = b.bv_var("prov_y", WIDTH)
        exact_byte = b.eq(b.bvand(x, b.bv_const(0xFF, WIDTH)), b.bv_const(0x3C, WIDTH))
        cold = fresh.check([exact_byte])
        assert cold.reason == "bitblast"  # component stored with that stage

        solver = PortfolioSolver(_stress_config(), cache=cache)
        session = solver.open_session()
        session.push(exact_byte)
        session.push(b.ult(y, b.bv_const(10, WIDTH)))
        first = session.check()
        assert first.is_sat
        # The whole-query verdict was stored: an identical later query hits.
        again = PortfolioSolver(_stress_config(), cache=cache).check(
            [exact_byte, b.ult(y, b.bv_const(10, WIDTH))]
        )
        assert again.reason == "cache"

    def test_fresh_cdcl_verdicts_are_still_cached(self):
        cache = SolverCache()
        solver = PortfolioSolver(_stress_config(), cache=cache)
        beta, deltas = _mixing_chain("fresh-cache")
        system = [beta] + deltas[:3]
        cold = solver.check(system)
        assert cold.is_sat and cold.reason == "bitblast"
        warm = solver.check(system)
        assert warm.reason == "cache"
        assert "bitblast" in warm.stages_tried


class TestComponentKeyConvention:
    def test_tiebreak_sensitive_components_share_across_embeddings(self):
        """First-application canonicalization is not a normal form (the
        commutative tiebreak compares the names the rename just changed),
        so component keys must come from re-canonicalization everywhere —
        a standalone query and a multi-component embedding of the same
        logical component have to land on one shared entry."""
        cache = SolverCache()
        solver = PortfolioSolver(cache=cache)
        x, y, z = (b.bv_var(n, WIDTH) for n in ("tb_x", "tb_y", "tb_z"))
        # ult(y, x) renames y first, flipping the add's name-tiebreak order
        # relative to the original x/y names.
        component = [
            b.ult(y, x),
            b.eq(b.add(x, y), b.bv_const(10, WIDTH)),
        ]
        standalone = solver.check(component)
        assert standalone.is_sat
        hits_before = cache.stats.component_hits
        embedded = solver.check(component + [b.ult(z, b.bv_const(5, WIDTH))])
        assert embedded.is_sat
        assert cache.stats.component_hits > hits_before


class TestFallbackPurity:
    def test_fallback_derived_verdicts_are_cached(self):
        """A verdict the session re-derived through the pure fresh-solve
        fallback (budget exhaustion) is session-independent and must be
        cached — only verdicts the incremental CDCL itself decided are
        withheld."""
        cache = SolverCache()
        config = _stress_config(bitblast_max_conflicts=1)
        solver = PortfolioSolver(config, cache=cache)
        x = b.bv_var("fb_x", WIDTH)
        hard = b.eq(b.bvand(b.mul(x, x), b.bv_const(31, WIDTH)), b.bv_const(5, WIDTH))
        session = solver.open_session()
        session.push(hard)
        result = session.check()
        assert result.is_unknown  # both session CDCL and fresh retry exhaust
        warm = PortfolioSolver(config, cache=cache).check([hard])
        assert warm.is_unknown
        assert warm.reason == "cache"
