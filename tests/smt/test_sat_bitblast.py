"""Tests for the CDCL SAT solver and the bit-blasting backend."""

import pytest

from repro.smt import builder as b
from repro.smt.bitblast import BitBlaster, solve_terms
from repro.smt.cnf import CNF
from repro.smt.evalmodel import evaluate, satisfies
from repro.smt.sat import CDCLSolver, SatStatus, solve_cnf


class TestCNF:
    def test_new_var_allocation(self):
        cnf = CNF()
        assert cnf.new_var() == 1
        assert cnf.new_var() == 2

    def test_named_vars(self):
        cnf = CNF()
        a = cnf.var_for("a")
        assert cnf.var_for("a") == a
        assert cnf.named_vars() == {"a": a}

    def test_tautology_dropped(self):
        cnf = CNF()
        a = cnf.new_var()
        cnf.add_clause((a, -a))
        assert len(cnf) == 0

    def test_empty_clause_marks_contradiction(self):
        cnf = CNF()
        cnf.add_clause(())
        assert cnf.has_contradiction

    def test_zero_literal_rejected(self):
        cnf = CNF()
        with pytest.raises(ValueError):
            cnf.add_clause((0,))


class TestCDCL:
    def test_trivially_satisfiable(self):
        cnf = CNF()
        a = cnf.new_var()
        cnf.add_clause((a,))
        result = solve_cnf(cnf)
        assert result.is_sat
        assert result.assignment[a] is True

    def test_trivially_unsatisfiable(self):
        cnf = CNF()
        a = cnf.new_var()
        cnf.add_clause((a,))
        cnf.add_clause((-a,))
        assert solve_cnf(cnf).is_unsat

    def test_requires_propagation(self):
        cnf = CNF()
        a, b_, c = cnf.new_var(), cnf.new_var(), cnf.new_var()
        cnf.add_clause((a,))
        cnf.add_clause((-a, b_))
        cnf.add_clause((-b_, c))
        result = solve_cnf(cnf)
        assert result.is_sat
        assert result.assignment[c] is True

    def test_pigeonhole_2_into_1_unsat(self):
        # Two pigeons, one hole: p1h1, p2h1, not both.
        cnf = CNF()
        p1, p2 = cnf.new_var(), cnf.new_var()
        cnf.add_clause((p1,))
        cnf.add_clause((p2,))
        cnf.add_clause((-p1, -p2))
        assert solve_cnf(cnf).is_unsat

    def test_xor_chain_satisfiable(self):
        cnf = CNF()
        variables = [cnf.new_var() for _ in range(6)]
        outputs = []
        for left, right in zip(variables, variables[1:]):
            out = cnf.new_var()
            cnf.encode_xor(out, left, right)
            outputs.append(out)
        cnf.add_clause((outputs[0],))
        cnf.add_clause((-outputs[-1],))
        assert solve_cnf(cnf).is_sat

    def test_random_3sat_instances_agree_with_bruteforce(self):
        import itertools
        import random

        rng = random.Random(7)
        for _ in range(25):
            num_vars = 6
            clauses = []
            for _ in range(14):
                literals = rng.sample(range(1, num_vars + 1), 3)
                clauses.append(tuple(v if rng.random() < 0.5 else -v for v in literals))
            cnf = CNF()
            for _ in range(num_vars):
                cnf.new_var()
            for clause in clauses:
                cnf.add_clause(clause)
            result = solve_cnf(cnf)

            def clause_holds(clause, assignment):
                return any(
                    (lit > 0) == assignment[abs(lit) - 1] for lit in clause
                )

            brute_sat = any(
                all(clause_holds(c, bits) for c in clauses)
                for bits in itertools.product([False, True], repeat=num_vars)
            )
            assert result.is_sat == brute_sat
            if result.is_sat:
                assignment = result.assignment
                assert all(
                    any((lit > 0) == assignment[abs(lit)] for lit in clause)
                    for clause in clauses
                )

    def test_assumptions_restrict_models(self):
        cnf = CNF()
        a, b_ = cnf.new_var(), cnf.new_var()
        cnf.add_clause((a, b_))
        result = CDCLSolver(cnf).solve(assumptions=[-a])
        assert result.is_sat
        assert result.assignment[b_] is True

    def test_conflicting_assumption_unsat(self):
        cnf = CNF()
        a = cnf.new_var()
        cnf.add_clause((a,))
        assert CDCLSolver(cnf).solve(assumptions=[-a]).is_unsat


class TestBitBlaster:
    def _check_sat_model(self, constraints):
        status, model = solve_terms(constraints)
        assert status == SatStatus.SAT
        for constraint in constraints:
            assert satisfies(constraint, model)
        return model

    def test_equality_with_constant(self):
        x = b.bv_var("x", 8)
        model = self._check_sat_model([b.eq(x, 173)])
        assert model["x"] == 173

    def test_addition(self):
        x = b.bv_var("x", 8)
        y = b.bv_var("y", 8)
        self._check_sat_model([b.eq(b.add(x, y), 100), b.ugt(x, 50), b.ugt(y, 30)])

    def test_addition_wraps(self):
        x = b.bv_var("x", 8)
        self._check_sat_model([b.eq(b.add(x, 200), 100)])

    def test_subtraction(self):
        x = b.bv_var("x", 8)
        model = self._check_sat_model([b.eq(b.sub(x, 7), 250)])
        assert model["x"] == (250 + 7) % 256

    def test_multiplication(self):
        x = b.bv_var("x", 8)
        y = b.bv_var("y", 8)
        self._check_sat_model(
            [b.eq(b.mul(x, y), 77), b.ugt(x, 1), b.ugt(y, 1), b.ult(x, 12)]
        )

    def test_multiplication_unsat(self):
        x = b.bv_var("x", 8)
        status, _ = solve_terms([b.eq(b.mul(x, 2), 7)])
        assert status == SatStatus.UNSAT

    def test_division(self):
        x = b.bv_var("x", 8)
        self._check_sat_model([b.eq(b.udiv(x, 5), 10), b.ne(x, 50)])

    def test_remainder(self):
        x = b.bv_var("x", 8)
        self._check_sat_model([b.eq(b.urem(x, 7), 3), b.ugt(x, 20)])

    def test_shifts_by_variable_amount(self):
        x = b.bv_var("x", 8)
        amount = b.bv_var("s", 8)
        self._check_sat_model(
            [b.eq(b.shl(x, amount), 0x40), b.ugt(amount, 2), b.ult(amount, 8)]
        )

    def test_logical_shift_right(self):
        x = b.bv_var("x", 8)
        self._check_sat_model([b.eq(b.lshr(x, b.bv_const(3, 8)), 0x1F)])

    def test_bitwise_operators(self):
        x = b.bv_var("x", 8)
        y = b.bv_var("y", 8)
        self._check_sat_model(
            [
                b.eq(b.bvand(x, y), 0x0F),
                b.eq(b.bvor(x, y), 0xFF),
                b.eq(b.bvxor(x, y), 0xF0),
            ]
        )

    def test_unsigned_comparisons(self):
        x = b.bv_var("x", 8)
        model = self._check_sat_model([b.uge(x, 100), b.ule(x, 100)])
        assert model["x"] == 100

    def test_signed_comparison(self):
        x = b.bv_var("x", 8)
        model = self._check_sat_model([b.slt(x, 0)])
        assert model["x"] >= 128

    def test_zext_sext_extract_concat(self):
        x = b.bv_var("x", 8)
        y = b.bv_var("y", 8)
        self._check_sat_model(
            [
                b.eq(b.concat(x, y), b.bv_const(0xAB12, 16)),
                b.eq(b.extract(x, 7, 4), b.bv_const(0xA, 4)),
                b.eq(b.zext(y, 16), b.bv_const(0x12, 16)),
            ]
        )

    def test_sext_negative(self):
        x = b.bv_var("x", 8)
        model = self._check_sat_model([b.eq(b.sext(x, 16), b.bv_const(0xFFFE, 16))])
        assert model["x"] == 0xFE

    def test_ite(self):
        x = b.bv_var("x", 8)
        y = b.bv_var("y", 8)
        term = b.ite(b.ult(x, 10), y, b.bv_const(0, 8))
        self._check_sat_model([b.eq(term, 42), b.ult(x, 5)])

    def test_boolean_structure(self):
        p = b.bool_var("p")
        q = b.bool_var("q")
        status, model = solve_terms([b.band(b.bor(p, q), b.bnot(p))])
        assert status == SatStatus.SAT

    def test_overflow_style_query(self):
        """A small version of the paper's target constraint."""
        w = b.bv_var("w", 8)
        h = b.bv_var("h", 8)
        wide = b.mul(b.zext(w, 16), b.zext(h, 16))
        model = self._check_sat_model(
            [b.ugt(wide, b.bv_const(0xFF, 16)), b.ult(w, 32), b.ult(h, 32)]
        )
        assert model["w"] * model["h"] > 0xFF

    def test_unsat_bounded_overflow(self):
        w = b.bv_var("w", 8)
        wide = b.mul(b.zext(w, 16), b.bv_const(2, 16))
        status, _ = solve_terms([b.ugt(wide, b.bv_const(0x1FF, 16)), b.ult(w, 10)])
        assert status == SatStatus.UNSAT

    def test_model_extraction_requires_sat(self):
        blaster = BitBlaster()
        blaster.assert_constraint(b.eq(b.bv_var("x", 4), 3))
        solver = CDCLSolver(blaster.cnf)
        result = solver.solve()
        model = blaster.extract_model(result)
        assert model["x"] == 3
