"""Differential parity for the flattened solving hot path.

The PR that flattened the hot path (array CDCL core, compiled term
evaluation, structurally-hashed Tseitin gates) kept the legacy
implementations alive — :class:`ReferenceCDCLSolver`, the recursive
interpreter behind ``USE_COMPILED``, and the unhashed encoder behind
``STRUCTURAL_HASHING`` — precisely so these tests can hold old and new
to the same verdicts on generated inputs.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.smt import builder as b
from repro.smt import evalcompile, evalmodel
from repro.smt.bitblast import solve_terms
from repro.smt.cnf import CNF
from repro.smt.evalmodel import Model, evaluate, satisfies
from repro.smt.hotpath import legacy_hot_path
from repro.smt.sat import CDCLSolver, SatStatus
from repro.smt.sat_reference import ReferenceCDCLSolver
from repro.smt.solver import TELEMETRY, PortfolioSolver, SolverConfig

WIDTH = 8
VALUE = st.integers(min_value=0, max_value=(1 << WIDTH) - 1)


# ----------------------------------------------------------------------
# Flat CDCL core vs the reference object-graph core
# ----------------------------------------------------------------------
@st.composite
def random_cnfs(draw):
    num_vars = draw(st.integers(min_value=1, max_value=10))
    literal = st.integers(min_value=1, max_value=num_vars).flatmap(
        lambda v: st.sampled_from([v, -v])
    )
    clauses = draw(
        st.lists(
            st.lists(literal, min_size=1, max_size=4), min_size=0, max_size=24
        )
    )
    cnf = CNF()
    for _ in range(num_vars):
        cnf.new_var()
    for clause in clauses:
        cnf.add_clause(clause)
    return cnf


@settings(max_examples=200, deadline=None)
@given(random_cnfs())
def test_flat_core_matches_the_reference_core(cnf):
    flat = CDCLSolver(cnf).solve()
    reference = ReferenceCDCLSolver(cnf).solve()
    assert flat.status == reference.status
    if flat.status == SatStatus.SAT:
        for clause in cnf.clauses:
            assert any(
                flat.assignment.get(abs(lit), False) == (lit > 0)
                for lit in clause
            )


@settings(max_examples=60, deadline=None)
@given(random_cnfs(), st.lists(st.integers(min_value=1, max_value=4), max_size=3))
def test_flat_core_matches_the_reference_under_assumptions(cnf, raw_assumptions):
    assumptions = [
        lit if i % 2 == 0 else -lit
        for i, lit in enumerate(raw_assumptions)
        if lit <= cnf.num_vars
    ]
    flat = CDCLSolver(cnf).solve(assumptions=assumptions)
    reference = ReferenceCDCLSolver(cnf).solve(assumptions=assumptions)
    assert flat.status == reference.status
    if flat.status == SatStatus.UNSAT:
        # Cores are subsets of the failed assumptions on both sides.
        assert set(flat.core) <= set(assumptions)
        assert set(reference.core) <= set(assumptions)


# ----------------------------------------------------------------------
# Compiled term evaluation vs the recursive interpreter
# ----------------------------------------------------------------------
def _leaf_terms():
    return st.one_of(
        VALUE.map(lambda v: b.bv_const(v, WIDTH)),
        st.sampled_from(["x", "y", "z"]).map(lambda n: b.bv_var(n, WIDTH)),
    )


@st.composite
def bv_terms(draw, max_depth=4):
    depth = draw(st.integers(min_value=0, max_value=max_depth))
    if depth == 0:
        return draw(_leaf_terms())
    shape = draw(st.integers(min_value=0, max_value=2))
    if shape == 0:
        return draw(_leaf_terms())
    if shape == 1:
        op = draw(st.sampled_from([b.neg, b.bvnot]))
        return op(draw(bv_terms(max_depth=depth - 1)))
    op = draw(
        st.sampled_from(
            [
                b.add,
                b.sub,
                b.mul,
                b.udiv,
                b.urem,
                b.bvand,
                b.bvor,
                b.bvxor,
                b.shl,
                b.lshr,
                b.ashr,
            ]
        )
    )
    return op(draw(bv_terms(max_depth=depth - 1)), draw(bv_terms(max_depth=depth - 1)))


@settings(max_examples=200, deadline=None)
@given(bv_terms(), VALUE, VALUE, VALUE)
def test_compiled_evaluation_matches_the_interpreter(term, x, y, z):
    model = Model({"x": x, "y": y, "z": z})
    compiled = evaluate(term, model)
    saved = evalmodel.USE_COMPILED
    evalmodel.USE_COMPILED = False
    try:
        interpreted = evaluate(term, model)
    finally:
        evalmodel.USE_COMPILED = saved
    assert compiled == interpreted


def test_compiled_evaluation_reports_unassigned_variables_identically():
    term = b.add(b.bv_var("missing", WIDTH), b.bv_const(1, WIDTH))
    errors = []
    for use_compiled in (True, False):
        saved = evalmodel.USE_COMPILED
        evalmodel.USE_COMPILED = use_compiled
        try:
            evaluate(term, Model({}))
        except evalmodel.EvaluationError as exc:
            errors.append(str(exc))
        finally:
            evalmodel.USE_COMPILED = saved
    assert len(errors) == 2
    assert errors[0] == errors[1]


def test_bool_terms_evaluate_identically_on_both_paths():
    # Whether or not the compiler can emit this kind (compiled_evaluator
    # caches a None sentinel when it cannot), evaluate() must answer — and
    # answer the same as the interpreter.
    term = b.eq(b.bv_var("x", WIDTH), b.bv_const(3, WIDTH))
    evalcompile.compiled_evaluator(term)
    compiled_value = evaluate(term, Model({"x": 3}))
    saved = evalmodel.USE_COMPILED
    evalmodel.USE_COMPILED = False
    try:
        interpreted_value = evaluate(term, Model({"x": 3}))
    finally:
        evalmodel.USE_COMPILED = saved
    assert bool(compiled_value) == bool(interpreted_value) is True


# ----------------------------------------------------------------------
# Structurally-hashed encoder vs the unhashed one
# ----------------------------------------------------------------------
def _encoder_systems():
    systems = []
    for variant in range(4):
        w = b.bv_var(f"ew{variant}", 16)
        h = b.bv_var(f"eh{variant}", 16)
        systems.append(
            [
                b.ugt(
                    b.mul(b.zext(w, 32), b.zext(h, 32)),
                    b.bv_const(0x00FFFFFF, 32),
                ),
                b.eq(b.bvand(w, b.bv_const(7, 16)), b.bv_const(5, 16)),
                b.eq(
                    b.bvand(b.add(w, h), b.bv_const(0xFF, 16)),
                    b.bv_const((0x40 + variant) & 0xFF, 16),
                ),
            ]
        )
        x = b.bv_var(f"ex{variant}", 16)
        systems.append(
            [
                b.eq(
                    b.bvand(b.mul(x, x), b.bv_const(31, 16)),
                    b.bv_const((5 + variant * 8) & 31, 16),
                )
            ]
        )
    return systems


def test_hashed_encoder_reaches_the_unhashed_verdicts():
    for system in _encoder_systems():
        hashed_status, hashed_model = solve_terms(system)
        with legacy_hot_path():
            legacy_status, legacy_model = solve_terms(system)
        assert hashed_status == legacy_status
        if hashed_status == SatStatus.SAT:
            assert all(satisfies(term, hashed_model) for term in system)
            assert all(satisfies(term, legacy_model) for term in system)


# ----------------------------------------------------------------------
# The legacy_hot_path switch itself
# ----------------------------------------------------------------------
def test_legacy_hot_path_restores_the_flat_stack():
    from repro.smt import bitblast as bitblast_mod
    from repro.smt import solver as solver_mod

    assert solver_mod.CDCLSolver is CDCLSolver
    assert bitblast_mod.STRUCTURAL_HASHING is True
    assert evalmodel.USE_COMPILED is True
    with legacy_hot_path():
        assert solver_mod.CDCLSolver is ReferenceCDCLSolver
        assert bitblast_mod.CDCLSolver is ReferenceCDCLSolver
        assert bitblast_mod.STRUCTURAL_HASHING is False
        assert evalmodel.USE_COMPILED is False
    assert solver_mod.CDCLSolver is CDCLSolver
    assert bitblast_mod.CDCLSolver is CDCLSolver
    assert bitblast_mod.STRUCTURAL_HASHING is True
    assert evalmodel.USE_COMPILED is True


def test_legacy_hot_path_restores_on_error():
    try:
        with legacy_hot_path():
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    from repro.smt import solver as solver_mod

    assert solver_mod.CDCLSolver is CDCLSolver
    assert evalmodel.USE_COMPILED is True


# ----------------------------------------------------------------------
# Propagation-loop telemetry (satellite: solver.propagations counters)
# ----------------------------------------------------------------------
def test_cdcl_bound_solve_records_propagation_counters():
    config = SolverConfig(
        enable_sessions=False,
        enable_decomposition=False,
        heuristic_max_checks=2,
    )
    x = b.bv_var("tc", 16)
    system = [
        b.eq(b.bvand(b.mul(x, x), b.bv_const(31, 16)), b.bv_const(5, 16))
    ]
    TELEMETRY.reset()
    result = PortfolioSolver(config).check(system)
    snapshot = TELEMETRY.snapshot()
    assert result.is_unsat
    assert snapshot["propagations"] > 0
    assert snapshot["sat_decisions"] > 0
    assert snapshot["propagations"] >= snapshot["cdcl_propagations"]
