"""Tests for UNSAT cores, from the SAT layer up through solver sessions.

The soundness contract under test:

* a core is a *subset* of the assumptions (SAT layer) or of the pushed
  conjuncts (session layer),
* re-asserting a core alone is still UNSAT (the property that makes core
  subsumption in the enforcement loop parity-exact),
* SAT and UNKNOWN results never carry a core,
* the ``enable_unsat_cores`` knob strips cores everywhere and is part of
  the solver-configuration fingerprint.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.smt import builder as b
from repro.smt.cache import SolverCache
from repro.smt.cnf import CNF
from repro.smt.sampler import SamplerConfig
from repro.smt.sat import CDCLSolver, SatStatus
from repro.smt.solver import PortfolioSolver, SolverConfig

WIDTH = 16


def _stress_config(**overrides):
    """Tiny incomplete-layer budgets: route queries to the CDCL backend."""
    defaults = dict(
        sampler=SamplerConfig(
            random_attempts_per_sample=3,
            hill_climb_steps=2,
            perturbation_attempts=2,
            seed=0,
        ),
        heuristic_max_checks=4,
        bitblast_max_conflicts=100_000,
    )
    defaults.update(overrides)
    return SolverConfig(**defaults)


def _contradictory_chain(tag=""):
    """β plus sanity checks whose tail only the complete backend refutes.

    The alignment check forces the low three bits of ``w`` to ``101`` while
    the parity check forces the lowest bit to ``0`` — invisible to interval
    propagation, so the UNSAT proof (and its core) comes from the CDCL.
    """
    w = b.bv_var(f"cw{tag}", WIDTH)
    h = b.bv_var(f"ch{tag}", WIDTH)
    beta = b.ugt(
        b.mul(b.zext(w, 32), b.zext(h, 32)), b.bv_const(0x00FFFFFF, 32)
    )
    align = b.eq(b.bvand(w, b.bv_const(7, WIDTH)), b.bv_const(5, WIDTH))
    hmask = b.eq(b.bvand(h, b.bv_const(3, WIDTH)), b.bv_const(2, WIDTH))
    parity = b.eq(b.bvand(w, b.bv_const(1, WIDTH)), b.bv_const(0, WIDTH))
    return beta, align, hmask, parity


class TestSatLevelCores:
    def _implication_cnf(self):
        """x -> y, z -> -y: assuming x and z together is contradictory."""
        cnf = CNF()
        x, y, z, w = (cnf.new_var() for _ in range(4))
        cnf.add_clause([-x, y])
        cnf.add_clause([-z, -y])
        return cnf, (x, y, z, w)

    def test_core_is_a_subset_of_the_assumptions(self):
        cnf, (x, _y, z, w) = self._implication_cnf()
        result = CDCLSolver(cnf).solve(assumptions=[x, w, z])
        assert result.status == SatStatus.UNSAT
        assert set(result.core) <= {x, w, z}
        # The irrelevant assumption is not dragged into the explanation.
        assert w not in result.core

    def test_core_reasserted_alone_is_still_unsat(self):
        cnf, (x, _y, z, w) = self._implication_cnf()
        result = CDCLSolver(cnf).solve(assumptions=[x, w, z])
        replay = CDCLSolver(cnf).solve(assumptions=list(result.core))
        assert replay.status == SatStatus.UNSAT

    def test_sat_results_carry_no_core(self):
        cnf, (x, _y, _z, _w) = self._implication_cnf()
        result = CDCLSolver(cnf).solve(assumptions=[x])
        assert result.status == SatStatus.SAT
        assert result.core is None

    def test_directly_conflicting_assumptions_core_both(self):
        cnf = CNF()
        x = cnf.new_var()
        cnf.add_clause([x, -x])  # tautology; the conflict is assumptions-only
        result = CDCLSolver(cnf).solve(assumptions=[x, -x])
        assert result.status == SatStatus.UNSAT
        assert set(result.core) == {x, -x}

    def test_formula_level_unsat_has_an_empty_core(self):
        cnf = CNF()
        x = cnf.new_var()
        cnf.add_unit(x)
        cnf.add_unit(-x)
        result = CDCLSolver(cnf).solve(assumptions=[cnf.new_var()])
        assert result.status == SatStatus.UNSAT
        assert result.core == ()

    @given(
        bound=st.integers(min_value=1, max_value=2**WIDTH - 2),
        extra=st.integers(min_value=0, max_value=2**WIDTH - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_session_cores_reassert_unsat(self, bound, extra):
        """Any session core, re-asserted fresh, is UNSAT (soundness)."""
        solver = PortfolioSolver(SolverConfig())
        session = solver.open_session()
        x = b.bv_var("prop_x", WIDTH)
        session.push(b.ult(x, b.bv_const(bound, WIDTH)))
        session.push(b.ugt(x, b.bv_const(max(bound, extra), WIDTH)))
        result = session.check()
        assert result.is_unsat
        core = result.unsat_core
        assert core is not None
        assert set(core) <= set(session.conjuncts)
        assert PortfolioSolver(SolverConfig()).check(list(core)).is_unsat


class TestSessionCores:
    def test_cdcl_core_is_a_proper_subset_of_the_conjuncts(self):
        beta, align, hmask, parity = _contradictory_chain("a")
        solver = PortfolioSolver(_stress_config())
        session = solver.open_session()
        for constraint in (beta, align, hmask):
            session.push(constraint)
        assert session.check().is_sat
        session.push(parity)
        result = session.check()
        assert result.is_unsat
        assert result.reason == "bitblast"
        core = set(result.unsat_core)
        assert core <= set(session.conjuncts)
        # The final conflict names the two clashing alignment checks, not
        # the whole conjunction.
        assert len(core) < len(session.conjuncts)
        assert align in core and parity in core

    def test_core_survives_the_cache_canonicalization_round_trip(self):
        """With a shared cache the CDCL solves *canonical* conjuncts; the
        core must come back translated into the caller's term space."""
        beta, align, hmask, parity = _contradictory_chain("b")
        solver = PortfolioSolver(_stress_config(), cache=SolverCache())
        session = solver.open_session()
        for constraint in (beta, align, hmask, parity):
            session.push(constraint)
        result = session.check()
        assert result.is_unsat
        assert set(result.unsat_core) <= set(session.conjuncts)
        assert PortfolioSolver(_stress_config()).check(
            list(result.unsat_core)
        ).is_unsat

    def test_unsat_component_refines_the_core(self):
        """Decomposition narrows the core to the UNSAT component."""
        x, y = b.bv_var("comp_x", WIDTH), b.bv_var("comp_y", WIDTH)
        contradiction = [
            b.ult(x, b.bv_const(5, WIDTH)),
            b.ugt(x, b.bv_const(9, WIDTH)),
        ]
        satisfiable = b.ult(y, b.bv_const(3, WIDTH))
        result = PortfolioSolver(SolverConfig(), cache=SolverCache()).check(
            [satisfiable] + contradiction
        )
        assert result.is_unsat
        assert set(result.unsat_core) == set(contradiction)

    def test_interval_unsat_falls_back_to_the_full_component(self):
        x = b.bv_var("iv_x", WIDTH)
        conjuncts = [
            b.ult(x, b.bv_const(5, WIDTH)),
            b.ugt(x, b.bv_const(9, WIDTH)),
        ]
        result = PortfolioSolver(SolverConfig()).check(conjuncts)
        assert result.is_unsat
        assert result.reason == "interval propagation"
        assert set(result.unsat_core) == set(conjuncts)

    def test_sat_and_unknown_results_carry_no_core(self):
        x = b.bv_var("sat_x", WIDTH)
        sat = PortfolioSolver(SolverConfig()).check(
            [b.ult(x, b.bv_const(10, WIDTH))]
        )
        assert sat.is_sat and sat.unsat_core is None
        hard = b.eq(
            b.bvand(b.mul(x, x), b.bv_const(31, WIDTH)), b.bv_const(5, WIDTH)
        )
        unknown = PortfolioSolver(
            _stress_config(bitblast_max_conflicts=1)
        ).check([hard])
        assert unknown.is_unknown and unknown.unsat_core is None

    def test_cache_hits_answer_without_a_core(self):
        """Cores are per-derivation: a cached UNSAT verdict has none."""
        cache = SolverCache()
        x = b.bv_var("hit_x", WIDTH)
        system = [
            b.ult(x, b.bv_const(5, WIDTH)),
            b.ugt(x, b.bv_const(9, WIDTH)),
        ]
        solver = PortfolioSolver(SolverConfig(), cache=cache)
        assert solver.check(system).unsat_core is not None
        warm = solver.check(system)
        assert warm.is_unsat
        assert warm.reason == "cache"
        assert warm.unsat_core is None


class TestCoreKnob:
    def test_disabled_cores_strip_everywhere(self):
        x = b.bv_var("off_x", WIDTH)
        config = SolverConfig(enable_unsat_cores=False)
        result = PortfolioSolver(config).check(
            [b.ult(x, b.bv_const(5, WIDTH)), b.ugt(x, b.bv_const(9, WIDTH))]
        )
        assert result.is_unsat and result.unsat_core is None
        beta, align, hmask, parity = _contradictory_chain("off")
        session = PortfolioSolver(
            _stress_config(enable_unsat_cores=False)
        ).open_session()
        for constraint in (beta, align, hmask, parity):
            session.push(constraint)
        result = session.check()
        assert result.is_unsat and result.unsat_core is None

    def test_core_knobs_are_fingerprinted(self):
        base = SolverConfig().fingerprint()
        assert SolverConfig(enable_unsat_cores=False).fingerprint() != base
        assert SolverConfig(reuse_sessions=False).fingerprint() != base


class TestCoreSubsumption:
    """Persisted cores as semantic certificates: a warm query whose
    canonical conjuncts are a *superset* of a stored core is UNSAT by
    subsumption — asserting more on top of a jointly infeasible subset
    cannot restore satisfiability — without running any solver layer."""

    def _core_system(self, tag=""):
        x = b.bv_var(f"cs{tag}", WIDTH)
        return x, [
            b.ult(x, b.bv_const(5, WIDTH)),
            b.ugt(x, b.bv_const(9, WIDTH)),
        ]

    def test_superset_query_is_answered_by_subsumption(self):
        cache = SolverCache()
        solver = PortfolioSolver(SolverConfig(), cache=cache)
        x, system = self._core_system("a")
        first = solver.check(system)
        assert first.is_unsat and first.unsat_core
        assert cache.core_count() >= 1

        superset = system + [b.ne(x, b.bv_const(7, WIDTH))]
        result = solver.check(superset)
        assert result.is_unsat
        assert result.reason == "core-subsumed"
        assert result.unsat_core  # translated back into caller terms
        assert set(result.unsat_core) <= set(superset)
        assert cache.stats.core_hits >= 1

    def test_core_survives_the_store_round_trip(self, tmp_path):
        from repro.smt.cachestore import CacheStore

        config = SolverConfig()
        cache = SolverCache()
        x, system = self._core_system("b")
        assert PortfolioSolver(config, cache=cache).check(system).is_unsat
        CacheStore(str(tmp_path)).save(cache, config.fingerprint())

        warm_cache = SolverCache()
        CacheStore(str(tmp_path)).load(warm_cache, config.fingerprint())
        assert warm_cache.core_count() == cache.core_count() >= 1
        warm = PortfolioSolver(config, cache=warm_cache)
        superset = system + [b.ne(x, b.bv_const(7, WIDTH))]
        result = warm.check(superset)
        assert result.is_unsat
        assert result.reason == "core-subsumed"
        assert warm_cache.stats.core_hits >= 1

    def test_disabled_cores_never_subsume(self):
        config = SolverConfig(enable_unsat_cores=False)
        cache = SolverCache()
        solver = PortfolioSolver(config, cache=cache)
        x, system = self._core_system("c")
        assert solver.check(system).is_unsat
        assert cache.core_count() == 0
        result = solver.check(system + [b.ne(x, b.bv_const(7, WIDTH))])
        assert result.is_unsat
        assert result.reason != "core-subsumed"
        assert cache.stats.core_hits == 0
