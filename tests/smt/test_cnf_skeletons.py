"""Blasted-CNF skeletons: the warm bitblast path.

Contract: a stored skeleton rebuilds the *exact* CNF a fresh Tseitin
translation of the same canonical conjuncts would produce — identical
variable numbering, identical clauses — so the CDCL run, and with it the
status and any extracted model, is byte-for-byte the run the fresh path
would have made.  Skeletons are pure translations, so they persist even
for queries whose verdict stayed UNKNOWN, and the
``enable_cnf_skeletons`` knob is fingerprinted like every other
behavior-relevant switch.
"""

from __future__ import annotations

from repro.smt import builder as b
from repro.smt.bitblast import BitBlaster
from repro.smt.cache import SolverCache
from repro.smt.cachestore import CacheStore, export_wire_entries, merge_wire_entries
from repro.smt.evalmodel import satisfies
from repro.smt.sampler import SamplerConfig
from repro.smt.sat import CDCLSolver, SatStatus
from repro.smt.solver import PortfolioSolver, SolverConfig

WIDTH = 16


def _stress_config(**overrides):
    """Tiny incomplete-layer budgets: route queries to the CDCL backend."""
    defaults = dict(
        sampler=SamplerConfig(
            random_attempts_per_sample=3,
            hill_climb_steps=2,
            perturbation_attempts=2,
            seed=0,
        ),
        heuristic_max_checks=4,
        bitblast_max_conflicts=100_000,
    )
    defaults.update(overrides)
    return SolverConfig(**defaults)


def _square_residue_system(residue, tag=""):
    """Only the complete backend decides these (squares mod 8 are {0,1,4})."""
    x = b.bv_var(f"sk{tag}", WIDTH)
    return [
        b.eq(
            b.bvand(b.mul(x, x), b.bv_const(7, WIDTH)),
            b.bv_const(residue, WIDTH),
        )
    ]


def _hard_residue_system(residue, tag=""):
    """Like :func:`_square_residue_system` but mod 32 (squares are
    {0, 1, 4, 9, 16, 17, 25}): the structurally-hashed encoder refutes the
    mod-8 variants by root propagation alone, while these still cost the
    CDCL core several conflicts — which is what a budget-exhaustion test
    needs."""
    x = b.bv_var(f"hr{tag}", WIDTH)
    return [
        b.eq(
            b.bvand(b.mul(x, x), b.bv_const(31, WIDTH)),
            b.bv_const(residue, WIDTH),
        )
    ]


def _exact_square_system(root, tag=""):
    """SAT, but only by CDCL: the sampler would have to guess ``root``."""
    x = b.bv_var(f"xs{tag}", WIDTH)
    return [
        b.eq(b.mul(x, x), b.bv_const((root * root) & ((1 << WIDTH) - 1), WIDTH))
    ]


class TestSkeletonUnit:
    def test_build_cnf_reproduces_the_blasters_cnf(self):
        blaster = BitBlaster()
        for conjunct in _exact_square_system(1234):
            blaster.assert_constraint(conjunct)
        skeleton = blaster.skeleton()
        rebuilt = skeleton.build_cnf()
        assert rebuilt.num_vars == blaster.cnf.num_vars
        assert tuple(rebuilt.clauses) == tuple(blaster.cnf.clauses)

    def test_extract_model_matches_the_blaster(self):
        blaster = BitBlaster()
        for conjunct in _square_residue_system(1):
            blaster.assert_constraint(conjunct)
        skeleton = blaster.skeleton()
        result = CDCLSolver(skeleton.build_cnf()).solve()
        assert result.status == SatStatus.SAT
        assert skeleton.extract_model(result).as_dict() == (
            blaster.extract_model(result).as_dict()
        )


class TestSkeletonWarmPath:
    def test_skeleton_only_cache_reaches_the_same_sat_verdict(self):
        """Seed a cache with *only* the cnf-kind artifacts of a cold run;
        the warm run must re-derive the identical status, with the
        skeleton supplying the CNF (no re-blasting)."""
        config = _stress_config()
        system = _exact_square_system(1234, "warm")
        cache_cold = SolverCache()
        cold = PortfolioSolver(config, cache=cache_cold).check(system)
        assert cold.is_sat
        assert cache_cold.cnf_count() > 0

        wire, _ = export_wire_entries(cache_cold)
        skeleton_wire = [item for item in wire if item.get("k") == "b"]
        assert len(skeleton_wire) == cache_cold.cnf_count()
        cache_warm = SolverCache()
        merge_wire_entries(cache_warm, skeleton_wire)
        assert len(cache_warm) == 0
        assert cache_warm.component_count() == 0
        assert cache_warm.cnf_count() == cache_cold.cnf_count()

        warm = PortfolioSolver(config, cache=cache_warm).check(system)
        assert warm.status == cold.status
        assert cache_warm.stats.cnf_hits >= 1
        assert warm.model is not None
        assert all(satisfies(c, warm.model) for c in system)

    def test_unknown_query_warm_starts_through_the_store(self, tmp_path):
        """An exhausted-budget UNKNOWN persists no verdict, but its
        skeleton rides the store; the warm run re-solves without
        re-blasting and classifies identically."""
        config = _stress_config(bitblast_max_conflicts=1)
        fingerprint = config.fingerprint()
        system = _hard_residue_system(5, "ukw")  # 5 is not a square mod 32
        cache_cold = SolverCache()
        cold = PortfolioSolver(config, cache=cache_cold).check(system)
        assert cold.is_unknown
        store = CacheStore(str(tmp_path))
        saved = store.save(cache_cold, fingerprint)
        assert saved == cache_cold.cnf_count() > 0

        cache_warm = SolverCache()
        assert store.load(cache_warm, fingerprint) == saved
        warm = PortfolioSolver(config, cache=cache_warm).check(system)
        assert warm.is_unknown  # same budget, same (re-built) CNF
        assert cache_warm.stats.cnf_hits >= 1

    def test_disabled_skeletons_store_and_consult_nothing(self):
        config = _stress_config(enable_cnf_skeletons=False)
        cache = SolverCache()
        result = PortfolioSolver(config, cache=cache).check(
            _exact_square_system(1234, "off")
        )
        assert result.is_sat
        assert cache.cnf_count() == 0
        assert cache.stats.cnf_hits == 0

    def test_skeleton_knob_is_fingerprinted(self):
        base = SolverConfig().fingerprint()
        assert SolverConfig(enable_cnf_skeletons=False).fingerprint() != base

    def test_skeleton_verdicts_match_the_fresh_path(self):
        """Parity: for a mix of SAT and UNSAT CDCL-bound queries, the
        skeleton-assisted warm run reports exactly the fresh statuses."""
        config = _stress_config()
        systems = [
            _exact_square_system(1234, "p1"),
            _square_residue_system(3, "p3"),
            _exact_square_system(777, "p2"),
            _square_residue_system(6, "p6"),
        ]
        fresh_statuses = [
            PortfolioSolver(_stress_config(enable_cnf_skeletons=False)).check(s).status
            for s in systems
        ]

        cache = SolverCache()
        solver = PortfolioSolver(config, cache=cache)
        cold_statuses = [solver.check(s).status for s in systems]
        assert cold_statuses == fresh_statuses

        skeleton_wire = [
            item
            for item in export_wire_entries(cache)[0]
            if item.get("k") == "b"
        ]
        cache_warm = SolverCache()
        merge_wire_entries(cache_warm, skeleton_wire)
        warm_solver = PortfolioSolver(config, cache=cache_warm)
        warm_statuses = [warm_solver.check(s).status for s in systems]
        assert warm_statuses == fresh_statuses
        assert cache_warm.stats.cnf_hits >= 1
