"""DIMACS interchange: export, parse, and re-solve parity.

The external-SAT portfolio arm rides this format, so the round-trip
contract is solver-grade: a parsed export must rebuild the *same* formula
(variable count, clause list, registered names), and re-solving it must
reach the identical status — on synthetic CNFs, on property-generated
ones, and on the blasted components of the registry's real per-site
target constraints.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import all_applications
from repro.core.fieldmap import FieldMapper
from repro.core.overflow import overflow_constraint
from repro.core.sites import identify_target_sites
from repro.core.target import extract_target_observations
from repro.smt import builder as b
from repro.smt.bitblast import BitBlaster
from repro.smt.cnf import CNF, parse_dimacs
from repro.smt.evalmodel import satisfies
from repro.smt.sat import CDCLSolver, SatStatus


def _registry_systems():
    """One [β] system per registry site with a size expression."""
    systems = []
    for app in all_applications():
        mapper = FieldMapper(app.format_spec)
        for site in identify_target_sites(app.program, app.seed_input):
            observations = extract_target_observations(
                app.program,
                app.seed_input,
                site,
                field_mapper=mapper,
                max_observations=1,
            )
            if observations and observations[0].size_expression is not None:
                systems.append(
                    [overflow_constraint(observations[0].size_expression)]
                )
    return systems


class TestRoundTrip:
    def test_simple_formula_round_trips_exactly(self):
        cnf = CNF()
        x, y = cnf.var_for("x"), cnf.var_for("y")
        z = cnf.new_var()
        cnf.add_clause((x, -y, z))
        cnf.add_clause((-x, y))
        cnf.add_unit(z)
        parsed = parse_dimacs(cnf.to_dimacs())
        assert parsed.num_vars == cnf.num_vars
        assert tuple(parsed.clauses) == tuple(cnf.clauses)
        assert parsed.named_vars() == cnf.named_vars()

    def test_contradiction_round_trips(self):
        cnf = CNF()
        cnf.add_clause(())
        parsed = parse_dimacs(cnf.to_dimacs())
        assert parsed.has_contradiction
        assert CDCLSolver(parsed).solve().status == SatStatus.UNSAT

    def test_blasted_registry_components_round_trip_and_resolve(self):
        """Export→parse→re-solve every registry β's blasted CNF."""
        systems = _registry_systems()
        assert systems  # the registry always exposes sized allocation sites
        for system in systems:
            blaster = BitBlaster()
            blaster.assert_all(system)
            parsed = parse_dimacs(blaster.cnf.to_dimacs())
            assert parsed.num_vars == blaster.cnf.num_vars
            assert tuple(parsed.clauses) == tuple(blaster.cnf.clauses)
            assert parsed.named_vars() == blaster.cnf.named_vars()
            original = CDCLSolver(blaster.cnf).solve()
            replayed = CDCLSolver(parsed).solve()
            assert replayed.status == original.status
            if replayed.status == SatStatus.SAT:
                # The parsed formula preserves names, so the blaster that
                # produced it can extract a model from the replayed run —
                # and that model must satisfy the original terms.
                model = blaster.extract_model(replayed)
                assert all(satisfies(term, model) for term in system)

    def test_blasted_cdcl_bound_system_round_trips(self):
        x = b.bv_var("rt", 16)
        blaster = BitBlaster()
        blaster.assert_all(
            [b.eq(b.mul(x, x), b.bv_const((1234 * 1234) & 0xFFFF, 16))]
        )
        parsed = parse_dimacs(blaster.cnf.to_dimacs())
        original = CDCLSolver(blaster.cnf).solve()
        replayed = CDCLSolver(parsed).solve()
        assert original.status == replayed.status == SatStatus.SAT
        assert blaster.extract_model(replayed).as_dict()["rt"] in (
            1234,
            (-1234) & 0xFFFF,
        )


class TestMalformedInput:
    def test_missing_problem_line(self):
        with pytest.raises(ValueError):
            parse_dimacs("1 2 0\n")

    def test_clause_before_problem_line(self):
        with pytest.raises(ValueError):
            parse_dimacs("1 0\np cnf 1 1\n")

    def test_literal_beyond_declared_vars(self):
        with pytest.raises(ValueError):
            parse_dimacs("p cnf 2 1\n3 0\n")

    def test_unterminated_clause(self):
        with pytest.raises(ValueError):
            parse_dimacs("p cnf 2 1\n1 2\n")

    def test_clause_count_mismatch(self):
        with pytest.raises(ValueError):
            parse_dimacs("p cnf 2 2\n1 0\n")

    def test_malformed_header(self):
        with pytest.raises(ValueError):
            parse_dimacs("p sat 2 1\n1 0\n")


# ----------------------------------------------------------------------
# Property: round-trip solve parity on random small CNFs
# ----------------------------------------------------------------------
@st.composite
def random_cnfs(draw):
    num_vars = draw(st.integers(min_value=1, max_value=8))
    literal = st.integers(min_value=1, max_value=num_vars).flatmap(
        lambda v: st.sampled_from([v, -v])
    )
    clauses = draw(
        st.lists(
            st.lists(literal, min_size=1, max_size=4), min_size=0, max_size=16
        )
    )
    cnf = CNF()
    for _ in range(num_vars):
        cnf.new_var()
    for clause in clauses:
        cnf.add_clause(clause)
    return cnf


@settings(max_examples=150, deadline=None)
@given(random_cnfs())
def test_round_trip_preserves_the_solvers_verdict(cnf):
    parsed = parse_dimacs(cnf.to_dimacs())
    assert parsed.num_vars == cnf.num_vars
    assert tuple(parsed.clauses) == tuple(cnf.clauses)
    original = CDCLSolver(cnf).solve()
    replayed = CDCLSolver(parsed).solve()
    assert replayed.status == original.status
    if replayed.status == SatStatus.SAT:
        assignment = replayed.assignment
        for clause in cnf.clauses:
            assert any(
                assignment.get(abs(lit), False) == (lit > 0) for lit in clause
            )
