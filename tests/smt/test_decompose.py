"""Tests for connected-component decomposition (:mod:`repro.smt.decompose`).

Contracts: components partition the conjuncts; variable sets are pairwise
disjoint; ordering is deterministic (by first conjunct position, original
relative order inside each component); composed per-component models decide
the whole conjunction.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.smt import builder as b
from repro.smt.decompose import Component, compose_models, decompose
from repro.smt.evalmodel import Model, satisfies
from repro.smt.solver import PortfolioSolver, SolverConfig

WIDTH = 8


def _var(name):
    return b.bv_var(name, WIDTH)


class TestDecompose:
    def test_empty_conjunction_has_no_components(self):
        assert decompose([]) == []

    def test_disjoint_conjuncts_split(self):
        first = b.ult(_var("x"), b.bv_const(10, WIDTH))
        second = b.ugt(_var("y"), b.bv_const(3, WIDTH))
        components = decompose([first, second])
        assert len(components) == 2
        assert components[0].conjuncts == (first,)
        assert components[0].variables == ("x",)
        assert components[1].conjuncts == (second,)
        assert components[1].variables == ("y",)

    def test_shared_variable_joins_conjuncts(self):
        first = b.ult(_var("x"), _var("y"))
        second = b.ugt(_var("y"), b.bv_const(3, WIDTH))
        components = decompose([first, second])
        assert len(components) == 1
        assert components[0].conjuncts == (first, second)
        assert components[0].variables == ("x", "y")

    def test_transitive_sharing_joins_chains(self):
        """x-y and y-z and z-w chain into one component."""
        chain = [
            b.ult(_var("x"), _var("y")),
            b.ult(_var("y"), _var("z")),
            b.ult(_var("z"), _var("w")),
            b.ugt(_var("q"), b.bv_const(0, WIDTH)),
        ]
        components = decompose(chain)
        assert len(components) == 2
        assert components[0].conjuncts == tuple(chain[:3])
        assert components[1].conjuncts == (chain[3],)

    def test_interleaved_components_keep_relative_order(self):
        """Conjunct order inside a component follows the input order even
        when the components interleave."""
        a1 = b.ult(_var("a"), b.bv_const(9, WIDTH))
        b1 = b.ult(_var("b"), b.bv_const(9, WIDTH))
        a2 = b.ugt(_var("a"), b.bv_const(1, WIDTH))
        b2 = b.ugt(_var("b"), b.bv_const(1, WIDTH))
        components = decompose([a1, b1, a2, b2])
        assert [c.conjuncts for c in components] == [(a1, a2), (b1, b2)]

    def test_variable_free_conjuncts_are_singletons(self):
        constant = b.TRUE
        other = b.ult(_var("x"), b.bv_const(4, WIDTH))
        components = decompose([constant, other, constant])
        assert [c.conjuncts for c in components] == [
            (constant,),
            (other,),
            (constant,),
        ]
        assert components[0].variables == ()

    def test_boolean_variables_join_the_graph(self):
        flag = b.bool_var("flag")
        first = b.bor(flag, b.ult(_var("x"), b.bv_const(3, WIDTH)))
        second = b.bor(flag, b.ugt(_var("y"), b.bv_const(5, WIDTH)))
        assert len(decompose([first, second])) == 1

    def test_decomposition_partitions_the_input(self):
        conjuncts = [
            b.ult(_var("x"), _var("y")),
            b.ugt(_var("z"), b.bv_const(1, WIDTH)),
            b.eq(_var("y"), b.bv_const(4, WIDTH)),
        ]
        components = decompose(conjuncts)
        flattened = [c for comp in components for c in comp.conjuncts]
        assert sorted(map(id, flattened)) == sorted(map(id, conjuncts))
        names = [set(comp.variables) for comp in components]
        for index, left in enumerate(names):
            for right in names[index + 1:]:
                assert not left & right


class TestComposeModels:
    def test_union_of_disjoint_models(self):
        composed = compose_models(
            [Model({"x": 1}), Model({"y": 2}), Model()]
        )
        assert composed.as_dict() == {"x": 1, "y": 2}


@st.composite
def disjoint_systems(draw):
    """Conjuncts over three disjoint variable pools."""
    comparisons = st.sampled_from([b.ult, b.ule, b.eq, b.ne, b.ugt, b.uge])
    value = st.integers(min_value=0, max_value=(1 << WIDTH) - 1)
    conjuncts = []
    for pool in ("x", "y", "z"):
        count = draw(st.integers(min_value=0, max_value=2))
        for _ in range(count):
            op = draw(comparisons)
            conjuncts.append(op(_var(pool), b.bv_const(draw(value), WIDTH)))
    return conjuncts


class TestDecomposedSolving:
    @given(system=disjoint_systems())
    @settings(max_examples=50, deadline=None)
    def test_decomposed_status_matches_monolithic(self, system):
        """Decomposition never changes the verdict, and composed SAT models
        satisfy every conjunct."""
        decomposed = PortfolioSolver(
            SolverConfig(enable_decomposition=True)
        ).check(system)
        monolithic = PortfolioSolver(
            SolverConfig(enable_decomposition=False)
        ).check(system)
        assert decomposed.status == monolithic.status
        if decomposed.is_sat:
            completed = decomposed.model.copy()
            for conjunct in system:
                for variable in conjunct.variables():
                    if variable not in completed:
                        completed[variable] = 0
            assert all(satisfies(c, completed) for c in system)
