"""Shared fixtures: application models and cached DIODE analyses.

Building an application model and running the full pipeline are cheap
(sub-second) but not free; the integration tests share a single analysis per
application through session-scoped fixtures.
"""

from __future__ import annotations

import pytest

from repro.apps import get_application
from repro.core import Diode


@pytest.fixture(scope="session")
def dillo_app():
    return get_application("dillo")


@pytest.fixture(scope="session")
def vlc_app():
    return get_application("vlc")


@pytest.fixture(scope="session")
def swfplay_app():
    return get_application("swfplay")


@pytest.fixture(scope="session")
def cwebp_app():
    return get_application("cwebp")


@pytest.fixture(scope="session")
def imagemagick_app():
    return get_application("imagemagick")


@pytest.fixture(scope="session")
def all_apps(dillo_app, vlc_app, swfplay_app, cwebp_app, imagemagick_app):
    return [dillo_app, vlc_app, swfplay_app, cwebp_app, imagemagick_app]


@pytest.fixture(scope="session")
def analysis_results(all_apps):
    """Full DIODE analysis of every benchmark application (cached)."""
    engine = Diode()
    return {app.name: engine.analyze(app) for app in all_apps}
