"""Smoke tests: the example scripts run end-to-end and produce the expected output."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True,
        text=True,
        timeout=240,
    )


class TestExamples:
    def test_quickstart_on_cwebp(self):
        result = _run("quickstart.py", "cwebp")
        assert result.returncode == 0, result.stderr
        assert "jpegdec.c@248" in result.stdout
        assert "7 target sites, 1 exposed" in result.stdout

    def test_dillo_walkthrough(self):
        result = _run("dillo_png_overflow.py")
        assert result.returncode == 0, result.stderr
        assert "target expression" in result.stdout
        assert "TRIGGERS OVERFLOW" in result.stdout
        assert "invalid memory accesses" in result.stdout

    def test_custom_application(self):
        result = _run("custom_application.py")
        assert result.returncode == 0, result.stderr
        assert "tga.c@animation" in result.stdout
        assert "diode_exposes_overflow" in result.stdout
