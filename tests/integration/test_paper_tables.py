"""Integration tests: the reproduction matches the shape of the paper's tables.

These tests run the full DIODE pipeline on all five application models (via
the session-scoped ``analysis_results`` fixture) and assert the Table 1 /
Table 2 shape described in the paper's evaluation section.
"""

import pytest

from repro.core.report import SiteClassification


def _result(analysis_results, name_fragment):
    for name, result in analysis_results.items():
        if name_fragment.lower() in name.lower():
            return result
    raise KeyError(name_fragment)


class TestTable1Shape:
    """Table 1: target site classification."""

    def test_total_sites_40(self, analysis_results):
        assert sum(r.total_target_sites for r in analysis_results.values()) == 40

    def test_total_exposed_14(self, analysis_results):
        assert sum(r.exposed_count for r in analysis_results.values()) == 14

    def test_total_unsatisfiable_17(self, analysis_results):
        assert sum(r.unsatisfiable_count for r in analysis_results.values()) == 17

    def test_total_prevented_9(self, analysis_results):
        assert sum(r.sanity_prevented_count for r in analysis_results.values()) == 9

    def test_no_unresolved_sites(self, analysis_results):
        for result in analysis_results.values():
            for site_result in result.site_results:
                assert site_result.classification is not SiteClassification.UNRESOLVED

    @pytest.mark.parametrize(
        "fragment,total,exposed,unsat,prevented",
        [
            ("dillo", 12, 3, 1, 8),
            ("vlc", 4, 4, 0, 0),
            ("swfplay", 8, 3, 5, 0),
            ("cwebp", 7, 1, 6, 0),
            ("imagemagick", 9, 3, 5, 1),
        ],
    )
    def test_per_application_rows(
        self, analysis_results, fragment, total, exposed, unsat, prevented
    ):
        result = _result(analysis_results, fragment)
        assert result.total_target_sites == total
        assert result.exposed_count == exposed
        assert result.unsatisfiable_count == unsat
        assert result.sanity_prevented_count == prevented

    def test_every_classification_matches_expectation(self, analysis_results, all_apps):
        mapping = {
            "exposed": SiteClassification.OVERFLOW_EXPOSED,
            "unsatisfiable": SiteClassification.TARGET_UNSATISFIABLE,
            "prevented": SiteClassification.SANITY_PREVENTED,
        }
        for app in all_apps:
            result = analysis_results[app.name]
            by_tag = {sr.site.site_tag: sr for sr in result.site_results}
            for expectation in app.expectations:
                site_result = by_tag[expectation.tag]
                assert site_result.classification is mapping[expectation.classification], (
                    f"{app.name} {expectation.tag}"
                )


class TestTable2Shape:
    """Table 2: per-overflow evaluation summary."""

    def test_fourteen_bug_reports(self, analysis_results):
        reports = [r for result in analysis_results.values() for r in result.bug_reports()]
        assert len(reports) == 14

    def test_eleven_new_three_known(self, analysis_results):
        reports = [r for result in analysis_results.values() for r in result.bug_reports()]
        known = [r for r in reports if r.cve.startswith("CVE")]
        assert len(known) == 3
        assert len(reports) - len(known) == 11

    def test_majority_need_no_enforcement(self, analysis_results):
        reports = [r for result in analysis_results.values() for r in result.bug_reports()]
        zero = [r for r in reports if r.enforced_branches == 0]
        assert len(zero) >= 8

    def test_enforced_counts_are_small(self, analysis_results):
        """Sites that need enforcement need only a handful of branches
        (2–5 in the paper; solver choices can shift a count by one or two)."""
        reports = [r for result in analysis_results.values() for r in result.bug_reports()]
        nonzero = [r.enforced_branches for r in reports if r.enforced_branches > 0]
        assert nonzero, "at least some sites require enforcement"
        assert all(1 <= count <= 6 for count in nonzero)

    def test_enforced_well_below_relevant_branches(self, analysis_results):
        reports = [r for result in analysis_results.values() for r in result.bug_reports()]
        for report in reports:
            if report.enforced_branches:
                assert report.enforced_branches <= report.relevant_branches

    def test_dillo_sites_need_enforcement(self, analysis_results):
        result = _result(analysis_results, "dillo")
        for report in result.bug_reports():
            assert report.enforced_branches >= 1, report.target

    def test_every_report_has_error_evidence(self, analysis_results):
        reports = [r for result in analysis_results.values() for r in result.bug_reports()]
        with_errors = [r for r in reports if r.error_type != "None"]
        assert len(with_errors) >= 12

    def test_triggering_inputs_verified_against_program(self, analysis_results, all_apps):
        """Every reported input, replayed from scratch, wraps the target size."""
        from repro.core.detection import ErrorDetector

        for app in all_apps:
            result = analysis_results[app.name]
            detector = ErrorDetector(app.program, app.seed_input)
            for site_result in result.site_results:
                if site_result.bug_report is None:
                    continue
                site_label = site_result.site.site_label
                evaluation = detector.evaluate(
                    site_result.bug_report.triggering_input, site_label
                )
                assert evaluation.triggers_overflow, site_result.site.name

    def test_discovery_times_are_reported(self, analysis_results):
        for result in analysis_results.values():
            assert result.analysis_seconds >= 0
            for site_result in result.site_results:
                assert site_result.discovery_seconds >= 0

    def test_cve_assignments_match_paper(self, analysis_results):
        reports = {
            r.target: r
            for result in analysis_results.values()
            for r in result.bug_reports()
        }
        assert reports["png.c@203"].cve == "CVE-2009-2294"
        assert reports["wav.c@147"].cve == "CVE-2008-2430"
        assert reports["xwindow.c@5619"].cve == "CVE-2009-1882"
