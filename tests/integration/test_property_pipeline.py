"""Property-based tests across the pipeline layers (hypothesis).

Cross-layer invariants that must hold for *any* input field values:

* the symbolic target expression extracted by the concolic interpreter,
  evaluated under the input's field values, equals the concrete allocation
  size observed when running that input;
* the overflow-witness interpreter agrees with exact big-integer arithmetic
  about whether the Dillo image-data size computation wrapped;
* the input rewriter produces structurally valid files (magic preserved,
  CRCs correct) for arbitrary field values and the written values read back;
* compressed branch constraints are always satisfied by the very input the
  seed path was recorded from.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.apps import get_application
from repro.core.branches import compress_branches, extract_branch_constraints
from repro.core.fieldmap import FieldMapper
from repro.core.sites import identify_target_sites
from repro.core.target import extract_target_observations
from repro.exec.concolic import ConcolicInterpreter
from repro.exec.overflow_witness import OverflowWitnessInterpreter
from repro.formats.png import PngFormat, build_png_seed
from repro.formats.rewriter import InputRewriter
from repro.smt.evalmodel import evaluate, satisfies

import zlib

import pytest


@pytest.fixture(scope="module")
def dillo():
    return get_application("dillo")


@pytest.fixture(scope="module")
def dillo_observation(dillo):
    sites = identify_target_sites(dillo.program, dillo.seed_input)
    site = next(s for s in sites if s.site_tag == "png.c@203")
    return extract_target_observations(
        dillo.program, dillo.seed_input, site, field_mapper=FieldMapper(dillo.format_spec)
    )[0]


WIDTHS = st.integers(min_value=1, max_value=999_999)
HEIGHTS = st.integers(min_value=1, max_value=999_999)
DEPTHS = st.integers(min_value=1, max_value=255)


class TestConcolicAgreesWithConcrete:
    @given(width=WIDTHS, height=HEIGHTS, depth=DEPTHS)
    @settings(max_examples=25, deadline=None)
    def test_target_expression_matches_concrete_size(
        self, dillo, dillo_observation, width, height, depth
    ):
        """evaluate(B, fields) == concrete allocation size, for inputs that
        reach the target site."""
        area = abs(
            (width * height) & 0xFFFFFFFF
            if (width * height) & 0xFFFFFFFF < 1 << 31
            else (width * height) & 0xFFFFFFFF - (1 << 32)
        )
        rewriter = InputRewriter(PngFormat)
        candidate = rewriter.rewrite_fields(
            dillo.seed_input,
            {"/header/width": width, "/header/height": height},
        )
        candidate = rewriter.rewrite_bytes(candidate, {24: depth})
        report = ConcolicInterpreter(
            dillo.program,
            relevant_bytes=set(dillo_observation.site.relevant_bytes),
            field_map=FieldMapper(dillo.format_spec).field_map(),
        ).run_concolic(candidate)
        records = report.allocations_at(dillo_observation.site.site_label)
        if not records:
            return  # rejected by a sanity check before the site — fine
        record = records[0]
        predicted = evaluate(
            dillo_observation.size_expression,
            {"/header/width": width, "/header/height": height, "/header/bit_depth": depth},
        )
        assert predicted == record.requested_size

    @given(width=WIDTHS, height=HEIGHTS, depth=DEPTHS)
    @settings(max_examples=25, deadline=None)
    def test_overflow_witness_matches_big_integer_arithmetic(
        self, dillo, width, height, depth
    ):
        rewriter = InputRewriter(PngFormat)
        candidate = rewriter.rewrite_fields(
            dillo.seed_input,
            {"/header/width": width, "/header/height": height},
        )
        candidate = rewriter.rewrite_bytes(candidate, {24: depth})
        report = OverflowWitnessInterpreter(dillo.program).run_witness(candidate)
        site_label = dillo.program.label_of_tag("png.c@203")
        executed = [
            a for a in report.execution.allocations if a.site_label == site_label
        ]
        if not executed:
            return
        rowbytes_exact = (width * (depth * 4)) >> 3
        size_exact = rowbytes_exact * height
        wrapped_somewhere = (
            width * (depth * 4) > 0xFFFFFFFF or size_exact > 0xFFFFFFFF
        )
        assert report.site_overflowed(site_label) == wrapped_somewhere


class TestRewriterProperties:
    @given(width=st.integers(0, 0xFFFFFFFF), height=st.integers(0, 0xFFFFFFFF))
    @settings(max_examples=50, deadline=None)
    def test_rewritten_png_is_structurally_valid(self, width, height):
        rewriter = InputRewriter(PngFormat)
        data = rewriter.rewrite_fields(
            build_png_seed(), {"/header/width": width, "/header/height": height}
        )
        dissected = PngFormat.dissect(data)
        assert data[:8] == build_png_seed()[:8]
        assert dissected.value_of("/header/width") == width
        assert dissected.value_of("/header/height") == height
        crc_region = data[12 : 12 + 17]
        assert dissected.value_of("/ihdr/crc") == (zlib.crc32(crc_region) & 0xFFFFFFFF)

    @given(
        overrides=st.dictionaries(
            st.integers(min_value=0, max_value=72),
            st.integers(min_value=0, max_value=255),
            max_size=8,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_byte_rewrites_never_change_length_or_magic(self, overrides):
        rewriter = InputRewriter(PngFormat)
        seed = build_png_seed()
        data = rewriter.rewrite_bytes(seed, overrides)
        assert len(data) == len(seed)
        assert data[:8] == seed[:8]


class TestBranchConstraintProperties:
    def test_seed_path_constraints_satisfied_by_seed_itself(self, dillo, dillo_observation):
        """compress(φ) of the seed path must accept the seed input."""
        mapper = FieldMapper(dillo.format_spec)
        assignment = mapper.assignment_for_input(
            dillo.seed_input, range(len(dillo.seed_input))
        )
        compressed = compress_branches(
            extract_branch_constraints(dillo_observation.seed_path)
        )
        for constraint in compressed:
            assert constraint.satisfied_by(assignment), constraint.label

    @given(width=WIDTHS, height=HEIGHTS)
    @settings(max_examples=25, deadline=None)
    def test_compressed_constraints_track_concrete_path_agreement(
        self, dillo, dillo_observation, width, height
    ):
        """If an input satisfies every compressed relevant constraint, its
        concrete run takes the same direction as the seed at those branches."""
        mapper = FieldMapper(dillo.format_spec)
        rewriter = InputRewriter(PngFormat)
        candidate = rewriter.rewrite_fields(
            dillo.seed_input, {"/header/width": width, "/header/height": height}
        )
        assignment = mapper.assignment_for_input(candidate, range(len(candidate)))
        compressed = compress_branches(
            extract_branch_constraints(dillo_observation.seed_path)
        )
        if not all(c.satisfied_by(assignment) for c in compressed):
            return
        # All constraints hold -> the candidate follows the seed path through
        # every recorded conditional, so it must reach the target site and
        # allocate the same size as the seed only if width/bit-depth match;
        # at minimum it must reach the site without being halted.
        from repro.exec.concrete import ConcreteInterpreter

        report = ConcreteInterpreter(dillo.program).run(candidate)
        site_label = dillo.program.label_of_tag("png.c@203")
        assert any(a.site_label == site_label for a in report.allocations)
