"""Integration tests for the paper's Sections 5.4–5.6 experiments.

* Section 5.4 — blocking checks: requiring the candidate to follow the whole
  relevant seed path is unsatisfiable for the Dillo sites (the png_memset
  style loop pins rowbytes), while the check-free sites stay satisfiable.
* Section 5.5 — target-constraint-alone success rates are bimodal: near
  total for applications without relevant sanity checks, near zero where
  sanity checks exist.
* Section 5.6 — adding the enforced branch constraints restores a high
  success rate for the guarded sites.
"""

import pytest

from repro.core.baselines import (
    EnforcedSampling,
    FullPathEnforcement,
    RandomByteFuzzer,
    TaintDirectedFuzzer,
    TargetOnlySampling,
)
from repro.core.fieldmap import FieldMapper
from repro.core.sites import identify_target_sites
from repro.core.target import extract_target_observations

SAMPLES = 40  # scaled-down version of the paper's 200-input experiments


def _observation(app, tag):
    sites = identify_target_sites(app.program, app.seed_input)
    site = next(s for s in sites if s.site_tag == tag)
    mapper = FieldMapper(app.format_spec)
    return extract_target_observations(
        app.program, app.seed_input, site, field_mapper=mapper
    )[0]


class TestSection54BlockingChecks:
    def test_dillo_full_path_unsatisfiable(self, dillo_app):
        for tag in ("png.c@203", "fltkimagebuf.cc@39", "Image.cxx@741"):
            result = FullPathEnforcement(dillo_app).run(_observation(dillo_app, tag))
            assert result.satisfiable is False, tag

    def test_unchecked_sites_full_path_satisfiable(self, swfplay_app, cwebp_app):
        swf = FullPathEnforcement(swfplay_app).run(
            _observation(swfplay_app, "jpeg.c@192")
        )
        webp = FullPathEnforcement(cwebp_app).run(
            _observation(cwebp_app, "jpegdec.c@248")
        )
        assert swf.satisfiable is True and swf.successes == 1
        assert webp.satisfiable is True and webp.successes == 1

    def test_vlc_guarded_site_full_path_blocked(self, vlc_app):
        """The per-sample interleave loop pins the sample stride: forcing the
        whole seed path cannot produce an overflow at dec.c@277.  The solver
        either proves the conjunction unsatisfiable or, at worst, fails to
        find any triggering input."""
        result = FullPathEnforcement(vlc_app).run(_observation(vlc_app, "dec.c@277"))
        assert result.satisfiable is not True
        assert result.successes == 0


class TestSection55TargetOnlySuccess:
    def test_unchecked_sites_have_high_success(self, swfplay_app, imagemagick_app):
        for app, tag in (
            (swfplay_app, "jpeg_rgb_decoder.c@253"),
            (imagemagick_app, "cache.c@803"),
        ):
            result = TargetOnlySampling(app, seed=7).run(_observation(app, tag), SAMPLES)
            assert result.success_rate >= 0.75, tag

    def test_guarded_sites_have_low_success(self, dillo_app, vlc_app):
        for app, tag in ((dillo_app, "png.c@203"), (vlc_app, "dec.c@277")):
            result = TargetOnlySampling(app, seed=7).run(_observation(app, tag), SAMPLES)
            assert result.success_rate <= 0.25, tag

    def test_wav_addition_site_solutions_trigger(self, vlc_app):
        """CVE-2008-2430: every model of ``x + 2 wraps`` triggers the overflow."""
        result = TargetOnlySampling(vlc_app, seed=7).run(
            _observation(vlc_app, "wav.c@147"), SAMPLES
        )
        assert result.success_rate >= 0.9
        assert result.satisfiable

    def test_bimodal_distribution_across_all_exposed_sites(self, all_apps):
        """Success rates cluster near 0 or near 1, not in the middle."""
        rates = []
        for app in all_apps:
            exposed = {e.tag for e in app.expectations if e.classification == "exposed"}
            for site in identify_target_sites(app.program, app.seed_input):
                if site.site_tag not in exposed:
                    continue
                observation = _observation(app, site.site_tag)
                result = TargetOnlySampling(app, seed=3).run(observation, samples=20)
                rates.append(result.success_rate)
        assert len(rates) == 14
        middling = [r for r in rates if 0.35 < r < 0.65]
        assert len(middling) <= 3


class TestSection56EnforcedSuccess:
    def test_enforcement_restores_success_rate_for_dillo(self, dillo_app, analysis_results):
        result = analysis_results[dillo_app.name]
        site_result = next(
            sr for sr in result.site_results if sr.site.site_tag == "png.c@203"
        )
        enforcement = site_result.enforcement
        assert enforcement is not None and enforcement.found_overflow
        target_only = TargetOnlySampling(dillo_app, seed=9).run(
            enforcement.observation, SAMPLES
        )
        enforced = EnforcedSampling(dillo_app, seed=9).run(enforcement, SAMPLES)
        assert enforced.success_rate > target_only.success_rate
        assert enforced.success_rate >= 0.4


class TestFuzzingBaselines:
    """The related-work comparison: fuzzing cannot navigate the sanity checks."""

    def test_fuzzers_fail_on_guarded_dillo_site(self, dillo_app):
        site = next(
            s
            for s in identify_target_sites(dillo_app.program, dillo_app.seed_input)
            if s.site_tag == "png.c@203"
        )
        random_result = RandomByteFuzzer(dillo_app, seed=13).run(site, attempts=60)
        directed_result = TaintDirectedFuzzer(dillo_app, seed=13).run(site, attempts=60)
        assert random_result.success_rate <= 0.05
        assert directed_result.success_rate <= 0.2

    def test_directed_fuzzer_beats_random_on_unchecked_site(self, cwebp_app):
        site = next(
            s
            for s in identify_target_sites(cwebp_app.program, cwebp_app.seed_input)
            if s.site_tag == "jpegdec.c@248"
        )
        random_result = RandomByteFuzzer(cwebp_app, seed=13).run(site, attempts=60)
        directed_result = TaintDirectedFuzzer(cwebp_app, seed=13).run(site, attempts=60)
        assert directed_result.successes >= random_result.successes
