"""Tests for canonical witness signatures."""

from repro.triage.signature import SIGNATURE_VERSION, site_identity, witness_signature


class TestSiteIdentity:
    def test_prefers_tag(self):
        assert site_identity(203, "png.c@203") == "png.c@203"

    def test_falls_back_to_label(self):
        assert site_identity(17, None) == "alloc@17"


class TestWitnessSignature:
    def test_deterministic(self):
        a = witness_signature("Dillo 2.1", 203, "png.c@203", ("mul",))
        b = witness_signature("Dillo 2.1", 203, "png.c@203", ("mul",))
        assert a == b

    def test_versioned_prefix(self):
        signature = witness_signature("app", 1, None, ())
        assert signature.startswith(f"w{SIGNATURE_VERSION}-")

    def test_provenance_order_and_duplicates_do_not_matter(self):
        a = witness_signature("app", 1, "t", ("mul", "add"))
        b = witness_signature("app", 1, "t", ("add", "mul", "add"))
        assert a == b

    def test_distinct_provenance_distinct_signature(self):
        a = witness_signature("app", 1, "t", ("mul",))
        b = witness_signature("app", 1, "t", ("add",))
        assert a != b

    def test_distinct_application_distinct_signature(self):
        a = witness_signature("app-a", 1, "t", ("mul",))
        b = witness_signature("app-b", 1, "t", ("mul",))
        assert a != b

    def test_distinct_site_distinct_signature(self):
        a = witness_signature("app", 1, "f.c@10", ("mul",))
        b = witness_signature("app", 1, "f.c@20", ("mul",))
        assert a != b

    def test_tagged_sites_ignore_label_renumbering(self):
        """Tags are the stable identity; labels may shift across model edits."""
        a = witness_signature("app", 10, "f.c@10", ("mul",))
        b = witness_signature("app", 99, "f.c@10", ("mul",))
        assert a == b
