"""Tests for witness minimization (ddmin + shrink-toward-baseline)."""

import pytest

from repro.apps import get_application
from repro.core import Diode
from repro.core.detection import ErrorDetector
from repro.core.inputs import InputGenerator
from repro.triage.minimize import WitnessMinimizer


@pytest.fixture(scope="module")
def dillo():
    return get_application("dillo")


@pytest.fixture(scope="module")
def detector(dillo):
    return ErrorDetector(dillo.program, dillo.seed_input)


@pytest.fixture(scope="module")
def exposed_site(dillo):
    """The png.c@203 site result with its discovered bug report."""
    result = Diode().analyze(dillo)
    for site_result in result.site_results:
        if site_result.site.name == "png.c@203":
            assert site_result.bug_report is not None
            return site_result
    raise AssertionError("png.c@203 not found")


class TestMinimize:
    def test_minimized_witness_still_triggers(self, dillo, detector, exposed_site):
        minimizer = WitnessMinimizer(dillo, detector=detector)
        site = exposed_site.site
        outcome = minimizer.minimize(
            site.site_label, exposed_site.bug_report.triggering_field_values
        )
        assert outcome.validated
        # Re-verify the final candidate from scratch: a fresh concrete run
        # of the minimized field values must still wrap the allocation.
        generator = InputGenerator(dillo.seed_input, dillo.format_spec)
        data = generator.generate_from_fields(outcome.field_values).data
        evaluation = detector.evaluate(data, site.site_label)
        assert evaluation.triggers_overflow
        assert evaluation.wrap_provenance

    def test_minimization_never_grows_the_witness(
        self, dillo, detector, exposed_site
    ):
        minimizer = WitnessMinimizer(dillo, detector=detector)
        original = exposed_site.bug_report.triggering_field_values
        outcome = minimizer.minimize(exposed_site.site.site_label, original)
        assert outcome.validated
        assert set(outcome.field_values) <= set(original)
        assert outcome.original_fields == len(original)
        assert outcome.removed_fields == len(original) - len(outcome.field_values)

    def test_redundant_field_is_dropped(self, dillo, detector, exposed_site):
        """png.c@203 wraps on width*height; bit_depth is along for the ride."""
        minimizer = WitnessMinimizer(dillo, detector=detector)
        original = dict(exposed_site.bug_report.triggering_field_values)
        assert "/header/bit_depth" in original
        outcome = minimizer.minimize(exposed_site.site.site_label, original)
        assert outcome.validated
        assert "/header/bit_depth" not in outcome.field_values

    def test_baseline_valued_fields_cost_no_budget(
        self, dillo, detector, exposed_site
    ):
        """Fields already at the seed value are dropped without extra runs."""
        minimizer = WitnessMinimizer(dillo, detector=detector)
        spec = dillo.format_spec
        baseline = spec.field("/header/bit_depth").read(dillo.seed_input)
        values = {
            "/header/width": 65536,
            "/header/height": 65536,
            "/header/bit_depth": baseline,
        }
        outcome = minimizer.minimize(exposed_site.site.site_label, values)
        assert outcome.validated
        assert "/header/bit_depth" not in outcome.field_values

    def test_non_triggering_values_fail_validation(
        self, dillo, detector, exposed_site
    ):
        minimizer = WitnessMinimizer(dillo, detector=detector)
        outcome = minimizer.minimize(
            exposed_site.site.site_label,
            {"/header/width": 2, "/header/height": 2},
        )
        assert not outcome.validated
        assert outcome.evaluation is None
        # The input comes back unchanged — nothing was proven removable.
        assert outcome.field_values == {"/header/width": 2, "/header/height": 2}

    def test_budget_is_respected(self, dillo, detector, exposed_site):
        minimizer = WitnessMinimizer(dillo, detector=detector, max_attempts=3)
        outcome = minimizer.minimize(
            exposed_site.site.site_label,
            exposed_site.bug_report.triggering_field_values,
        )
        assert outcome.attempts <= 3
        # Validation still succeeded (the first run is the original witness).
        assert outcome.validated

    def test_baseline_value_reads_the_seed(self, dillo, detector):
        minimizer = WitnessMinimizer(dillo, detector=detector)
        spec = dillo.format_spec
        assert minimizer.baseline_value("/header/width") == spec.field(
            "/header/width"
        ).read(dillo.seed_input)
        assert minimizer.baseline_value("/not/a/field") is None
