"""Tests for the persistent witness corpus store."""

import json
import os

import pytest

from repro.triage.corpus import (
    CORPUS_FORMAT_VERSION,
    CorpusStore,
    WitnessRecord,
    corpus_fingerprint,
    merge_records,
)


def make_record(signature="w1-aaaa", **overrides) -> WitnessRecord:
    base = dict(
        signature=signature,
        application="Dillo 2.1",
        site_label=7,
        site_tag="png.c@203",
        provenance=("mul",),
        field_values={"/header/width": 65536, "/header/height": 65536},
        requested_size=0,
        error_type="SIGSEGV/InvalidRead",
        cve="CVE-2009-2294",
        enforced_branches=5,
        relevant_branches=7,
        minimized=True,
        removed_fields=1,
        shrunk_fields=1,
        original_fields=3,
    )
    base.update(overrides)
    return WitnessRecord(**base)


class TestWireFormat:
    def test_round_trip(self):
        record = make_record()
        rebuilt = WitnessRecord.from_wire(record.to_wire())
        assert rebuilt == record

    def test_wire_is_json_serializable(self):
        wire = make_record().to_wire()
        assert WitnessRecord.from_wire(json.loads(json.dumps(wire))) == make_record()

    def test_missing_optional_fields_default(self):
        """Adding optional fields must stay backward compatible."""
        minimal = {
            "signature": "w1-bbbb",
            "application": "app",
            "site_label": 1,
        }
        record = WitnessRecord.from_wire(minimal)
        assert record.field_values == {}
        assert record.times_seen == 1
        assert record.status == "fresh"
        assert record.minimized is False

    def test_matches_site_prefers_tags(self):
        record = make_record(site_label=7, site_tag="png.c@203")
        assert record.matches_site(99, "png.c@203")
        assert not record.matches_site(7, "other.c@1")
        untagged = make_record(site_tag=None)
        assert untagged.matches_site(7, "whatever")
        assert not untagged.matches_site(8, None)


class TestMergeRecords:
    def test_merge_with_none_copies(self):
        record = make_record()
        merged = merge_records(None, record)
        assert merged == record
        assert merged is not record

    def test_smaller_witness_wins(self):
        big = make_record(field_values={"a": 10, "b": 20}, times_seen=2)
        small = make_record(field_values={"a": 10}, times_seen=3)
        merged = merge_records(big, small)
        assert merged.field_values == {"a": 10}
        assert merged.times_seen == 5

    def test_field_rebuildable_beats_raw_input(self):
        raw = make_record(field_values={"a": 1}, input_hex="00ff")
        fields = make_record(field_values={"a": 1, "b": 2}, input_hex=None)
        assert merge_records(raw, fields).input_hex is None

    def test_mismatched_signatures_rejected(self):
        with pytest.raises(ValueError):
            merge_records(make_record("w1-aaaa"), make_record("w1-bbbb"))


class TestCorpusStore:
    def test_save_load_round_trip(self, tmp_path):
        store = CorpusStore(str(tmp_path))
        records = {
            "w1-aaaa": make_record("w1-aaaa"),
            "w1-bbbb": make_record("w1-bbbb", site_tag="wav.c@147"),
        }
        assert store.save(records) == 2
        loaded = store.load()
        assert loaded == records

    def test_load_missing_dir_is_cold(self, tmp_path):
        assert CorpusStore(str(tmp_path / "nope")).load() == {}

    def test_merge_on_save_converges(self, tmp_path):
        """Two campaigns saving different witnesses build one corpus."""
        first = CorpusStore(str(tmp_path))
        first.save({"w1-aaaa": make_record("w1-aaaa")})
        second = CorpusStore(str(tmp_path))
        total = second.save({"w1-bbbb": make_record("w1-bbbb")})
        assert total == 2
        assert set(second.load()) == {"w1-aaaa", "w1-bbbb"}

    def test_merge_on_save_accumulates_times_seen(self, tmp_path):
        store = CorpusStore(str(tmp_path))
        store.save({"w1-aaaa": make_record("w1-aaaa")})
        store.save({"w1-aaaa": make_record("w1-aaaa")})
        assert store.load()["w1-aaaa"].times_seen == 2

    def test_save_without_merge_replaces(self, tmp_path):
        store = CorpusStore(str(tmp_path))
        store.save({"w1-aaaa": make_record("w1-aaaa")})
        store.save({"w1-bbbb": make_record("w1-bbbb")}, merge=False)
        assert set(store.load()) == {"w1-bbbb"}

    def test_version_mismatch_is_cold(self, tmp_path):
        store = CorpusStore(str(tmp_path))
        store.save({"w1-aaaa": make_record("w1-aaaa")})
        meta_path = os.path.join(str(tmp_path), "meta.json")
        with open(meta_path, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
        meta["version"] = CORPUS_FORMAT_VERSION + 1
        with open(meta_path, "w", encoding="utf-8") as handle:
            json.dump(meta, handle)
        assert store.load() == {}

    def test_fingerprint_mismatch_is_cold(self, tmp_path):
        store = CorpusStore(str(tmp_path))
        store.save({"w1-aaaa": make_record("w1-aaaa")})
        meta_path = os.path.join(str(tmp_path), "meta.json")
        with open(meta_path, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
        meta["fingerprint"] = ["something", "else"]
        with open(meta_path, "w", encoding="utf-8") as handle:
            json.dump(meta, handle)
        assert store.load() == {}

    def test_corrupt_shard_loses_records_not_corpus(self, tmp_path):
        store = CorpusStore(str(tmp_path), shard_count=1)
        store.save(
            {"w1-aaaa": make_record("w1-aaaa"), "w1-bbbb": make_record("w1-bbbb")}
        )
        with open(os.path.join(str(tmp_path), "shard-00.json"), "w") as handle:
            handle.write("{not json")
        assert store.load() == {}  # the only shard is corrupt; meta survives

    def test_malformed_records_are_skipped(self, tmp_path):
        store = CorpusStore(str(tmp_path), shard_count=1)
        store.save({"w1-aaaa": make_record("w1-aaaa")})
        shard_path = os.path.join(str(tmp_path), "shard-00.json")
        with open(shard_path, "r", encoding="utf-8") as handle:
            entries = json.load(handle)
        entries.append({"garbage": True})
        with open(shard_path, "w", encoding="utf-8") as handle:
            json.dump(entries, handle)
        assert set(store.load()) == {"w1-aaaa"}

    def test_save_releases_the_lock(self, tmp_path):
        store = CorpusStore(str(tmp_path))
        store.save({"w1-aaaa": make_record("w1-aaaa")})
        assert not os.path.exists(os.path.join(str(tmp_path), ".lock"))

    def test_concurrent_saves_lose_no_records(self, tmp_path):
        """Racing writers serialize on the lock; both record sets survive."""
        import threading

        store = CorpusStore(str(tmp_path))
        signatures = [f"w1-{i:04d}" for i in range(12)]

        def save_one(signature):
            CorpusStore(str(tmp_path)).save({signature: make_record(signature)})

        threads = [
            threading.Thread(target=save_one, args=(sig,)) for sig in signatures
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert set(store.load()) == set(signatures)

    def test_meta_records_fingerprint_and_count(self, tmp_path):
        store = CorpusStore(str(tmp_path))
        store.save({"w1-aaaa": make_record("w1-aaaa")})
        with open(os.path.join(str(tmp_path), "meta.json")) as handle:
            meta = json.load(handle)
        assert meta["version"] == CORPUS_FORMAT_VERSION
        assert tuple(meta["fingerprint"]) == corpus_fingerprint()
        assert meta["entries"] == 1


class TestCorpusLocking:
    def test_stale_lock_is_broken_and_save_succeeds(self, tmp_path):
        """A writer that died holding the lock must not deadlock later
        saves: the store breaks the stale lock (atomically — rename, not
        a racy unlink) and proceeds."""
        (tmp_path / ".lock").write_text("99999")  # holder died long ago
        store = CorpusStore(str(tmp_path))
        store._store.lock_timeout = 0.2  # keep the test fast
        assert store.save({"w1-aaaa": make_record("w1-aaaa")}) == 1
        assert set(store.load()) == {"w1-aaaa"}
        assert not (tmp_path / ".lock").exists()

    def test_concurrent_process_saves_lose_no_records(self, tmp_path):
        """Racing *processes* (not just threads) sharing one --corpus-dir
        must converge on the union."""
        import multiprocessing

        ctx = multiprocessing.get_context("spawn")
        writer_count = 4
        barrier = ctx.Barrier(writer_count)
        processes = [
            ctx.Process(
                target=_mp_save_witness, args=(str(tmp_path), i, barrier)
            )
            for i in range(writer_count)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=60)
            assert process.exitcode == 0
        assert set(CorpusStore(str(tmp_path)).load()) == {
            f"w1-{i:04d}" for i in range(writer_count)
        }


def _mp_save_witness(corpus_dir, index, barrier):
    from repro.triage.corpus import CorpusStore
    import test_corpus as this_module

    signature = f"w1-{index:04d}"
    record = this_module.make_record(signature)
    barrier.wait()
    CorpusStore(corpus_dir).save({signature: record})
