"""Tests for the triage engine: triager pipeline and regression replay."""

import pytest

from repro.apps import get_application
from repro.core import Diode
from repro.core.detection import ErrorDetector
from repro.triage.corpus import (
    STATUS_NO_LONGER_TRIGGERS,
    STATUS_STILL_TRIGGERS,
    STATUS_UNKNOWN_APPLICATION,
    STATUS_UNKNOWN_SITE,
    WitnessRecord,
)
from repro.triage.engine import WitnessTriager, replay_corpus
from repro.triage.signature import witness_signature


@pytest.fixture(scope="module")
def dillo():
    return get_application("dillo")


@pytest.fixture(scope="module")
def detector(dillo):
    return ErrorDetector(dillo.program, dillo.seed_input)


@pytest.fixture(scope="module")
def dillo_records(dillo, detector):
    """Triaged witness records for every dillo overflow."""
    result = Diode().analyze(dillo)
    triager = WitnessTriager(dillo, detector=detector)
    records = {}
    for site_result in result.site_results:
        if site_result.bug_report is None:
            continue
        record = triager.triage(site_result.site, site_result.bug_report)
        assert record is not None
        records[record.signature] = record
    return records


class TestWitnessTriager:
    def test_every_dillo_overflow_triages(self, dillo_records):
        assert len(dillo_records) == 3

    def test_records_carry_provenance_and_signature(self, dillo_records):
        for signature, record in dillo_records.items():
            assert record.provenance, record.site_name
            assert signature == witness_signature(
                record.application,
                record.site_label,
                record.site_tag,
                record.provenance,
            )

    def test_same_bug_different_values_same_signature(
        self, dillo, detector, dillo_records
    ):
        """A rediscovery with different field values dedupes by signature."""
        result = Diode().analyze(dillo)
        triager = WitnessTriager(dillo, detector=detector, minimize=False)
        for site_result in result.site_results:
            if site_result.bug_report is None:
                continue
            report = site_result.bug_report
            doubled = {
                path: value * 2 if value < 2**31 else value
                for path, value in report.triggering_field_values.items()
            }
            report.triggering_field_values = doubled
            report.triggering_input = None
            record = triager.triage(site_result.site, report)
            if record is None:
                continue  # the doubled values may genuinely not trigger
            assert record.signature in dillo_records

    def test_bogus_report_rejected(self, dillo, detector):
        from repro.core.report import OverflowBugReport
        from repro.core.sites import identify_target_sites

        sites = identify_target_sites(dillo.program, dillo.seed_input)
        report = OverflowBugReport(
            application=dillo.name,
            target=sites[0].name,
            cve="New",
            error_type="None",
            enforced_branches=0,
            relevant_branches=0,
            analysis_seconds=0.0,
            discovery_seconds=0.0,
            triggering_field_values={"/header/width": 3},
            triggering_input=dillo.seed_input,
        )
        triager = WitnessTriager(dillo, detector=detector)
        assert triager.triage(sites[0], report) is None


class TestReplayCorpus:
    def test_fresh_witnesses_still_trigger(self, dillo, dillo_records):
        records = {sig: rec for sig, rec in dillo_records.items()}
        report = replay_corpus(records, [dillo])
        assert len(report.entries) == len(records)
        assert all(e.status == STATUS_STILL_TRIGGERS for e in report.entries)
        assert all(
            record.status == STATUS_STILL_TRIGGERS for record in records.values()
        )
        assert report.regressions == []

    def test_stale_witness_reports_no_longer_triggers(self, dillo, dillo_records):
        signature, record = next(iter(dillo_records.items()))
        stale = WitnessRecord.from_wire(record.to_wire())
        stale.field_values = {"/header/width": 2, "/header/height": 2}
        stale.input_hex = None
        report = replay_corpus({signature: stale}, [dillo])
        assert report.entries[0].status == STATUS_NO_LONGER_TRIGGERS
        assert [e.signature for e in report.regressions] == [signature]

    def test_unknown_site(self, dillo, dillo_records):
        record = next(iter(dillo_records.values()))
        ghost = WitnessRecord.from_wire(record.to_wire())
        ghost.site_tag = "gone.c@1"
        ghost.site_label = -12345
        report = replay_corpus({ghost.signature: ghost}, [dillo])
        assert report.entries[0].status == STATUS_UNKNOWN_SITE

    def test_unknown_application_marked_when_replaying_everything(
        self, dillo, dillo_records
    ):
        record = next(iter(dillo_records.values()))
        alien = WitnessRecord.from_wire(record.to_wire())
        alien.application = "Not An App 1.0"
        report = replay_corpus({alien.signature: alien}, [dillo], mark_missing=True)
        assert report.entries[0].status == STATUS_UNKNOWN_APPLICATION

    def test_filtered_replay_leaves_other_apps_untouched(
        self, dillo, dillo_records
    ):
        record = next(iter(dillo_records.values()))
        alien = WitnessRecord.from_wire(record.to_wire())
        alien.application = "Not An App 1.0"
        original_status = alien.status
        report = replay_corpus(
            {alien.signature: alien}, [dillo], mark_missing=False
        )
        assert report.entries == []
        assert alien.status == original_status
