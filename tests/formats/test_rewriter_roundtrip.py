"""Round-trip coverage for the input rewriter across every registry format.

For each benchmark application's format spec and seed input: rewrite the
mutable integer fields, dissect the result, and check that every value
reads back exactly — and that derived fields (checksums, lengths) were
re-fixed so the rewritten file is still structurally valid.  This is the
Peach-role contract the whole input-generation stage (and therefore every
triage witness rebuild) rests on.
"""

from __future__ import annotations

import pytest

from repro.apps import all_applications
from repro.formats.fields import FieldKind
from repro.formats.rewriter import InputRewriter
from repro.formats.spec import FormatError


def registry_cases():
    return [
        pytest.param(application, id=application.format_spec.name)
        for application in all_applications()
    ]


@pytest.mark.parametrize("application", registry_cases())
class TestRewriteParseRoundTrip:
    def _new_field_values(self, application):
        """Fresh, distinguishable values for every mutable UINT field."""
        values = {}
        for index, spec in enumerate(application.format_spec.mutable_fields()):
            if spec.kind is not FieldKind.UINT:
                continue
            width_mask = (1 << (8 * spec.size)) - 1
            current = spec.read(application.seed_input)
            values[spec.path] = (current + 0x1F2E + index * 977) & width_mask
        return values

    def test_every_mutable_field_round_trips(self, application):
        spec = application.format_spec
        values = self._new_field_values(application)
        assert values, f"{spec.name} declares no mutable integer fields"
        rewritten = InputRewriter(spec).rewrite_fields(
            application.seed_input, values
        )
        dissected = spec.dissect(rewritten)
        for path, value in values.items():
            assert dissected.value_of(path) == value, path

    def test_rewrite_preserves_size_and_magic(self, application):
        spec = application.format_spec
        rewritten = InputRewriter(spec).rewrite_fields(
            application.seed_input, self._new_field_values(application)
        )
        assert len(rewritten) == len(application.seed_input)
        for field_spec in spec.fields:
            if field_spec.kind is FieldKind.MAGIC:
                assert (
                    field_spec.read_bytes(rewritten)
                    == field_spec.read_bytes(application.seed_input)
                ), field_spec.path

    def test_checksums_are_refixed_after_field_rewrites(self, application):
        spec = application.format_spec
        rewritten = InputRewriter(spec).rewrite_fields(
            application.seed_input, self._new_field_values(application)
        )
        checked = 0
        for field_spec in spec.fields:
            if field_spec.kind is not FieldKind.CHECKSUM:
                continue
            if field_spec.covers is None or field_spec.compute is None:
                continue
            start, size = field_spec.covers
            end = len(rewritten) if size < 0 else start + size
            expected = field_spec.compute(rewritten[start:end])
            assert field_spec.read(rewritten) == expected, field_spec.path
            checked += 1
        if spec.name in ("png", "swf"):
            assert checked, f"{spec.name} is expected to declare checksums"

    def test_length_fields_are_refixed(self, application):
        spec = application.format_spec
        rewritten = InputRewriter(spec).rewrite_fields(
            application.seed_input, self._new_field_values(application)
        )
        for field_spec in spec.fields:
            if field_spec.kind is not FieldKind.LENGTH:
                continue
            if field_spec.covers is None:
                continue
            start, size = field_spec.covers
            end = len(rewritten) if size < 0 else start + size
            assert field_spec.read(rewritten) == max(0, end - start), (
                field_spec.path
            )

    def test_byte_level_rewrite_matches_field_level(self, application):
        """The solver-model path (byte values) agrees with rewrite_fields."""
        spec = application.format_spec
        rewriter = InputRewriter(spec)
        values = self._new_field_values(application)
        by_fields = rewriter.rewrite_fields(application.seed_input, values)
        byte_values = rewriter.field_values_to_bytes(values)
        by_bytes = rewriter.rewrite_bytes(application.seed_input, byte_values)
        assert by_fields == by_bytes

    def test_seed_dissects_cleanly(self, application):
        """Sanity: the seed itself parses against its own spec."""
        dissected = application.format_spec.dissect(application.seed_input)
        assert dissected.field_values()

    def test_rewriting_derived_field_is_rejected(self, application):
        spec = application.format_spec
        derived = [
            field_spec
            for field_spec in spec.fields
            if field_spec.kind in (FieldKind.CHECKSUM, FieldKind.LENGTH, FieldKind.MAGIC)
        ]
        if not derived:
            pytest.skip(f"{spec.name} declares no derived fields")
        with pytest.raises(FormatError):
            InputRewriter(spec).rewrite_fields(
                application.seed_input, {derived[0].path: 1}
            )
