"""Tests for the input-format substrate (fields, specs, rewriter, formats)."""

import zlib

import pytest

from repro.formats import (
    PngFormat,
    SwfFormat,
    WavFormat,
    WebpFormat,
    XwdFormat,
    build_png_seed,
    build_swf_seed,
    build_wav_seed,
    build_webp_seed,
    build_xwd_seed,
)
from repro.formats.checksum import additive_checksum, adler32, crc32
from repro.formats.fields import Endianness, FieldKind, FieldSpec
from repro.formats.rewriter import InputRewriter
from repro.formats.spec import DissectedInput, FormatError, FormatSpec
from repro.formats import png as png_layout
from repro.formats import wav as wav_layout


class TestFieldSpec:
    width_field = FieldSpec("/w", 4, 2, FieldKind.UINT, Endianness.BIG)

    def test_read_big_endian(self):
        data = bytes([0, 0, 0, 0, 0x01, 0x02])
        assert self.width_field.read(data) == 0x0102

    def test_read_little_endian(self):
        field = FieldSpec("/w", 0, 2, FieldKind.UINT, Endianness.LITTLE)
        assert field.read(bytes([0x01, 0x02])) == 0x0201

    def test_read_short_data_pads(self):
        assert self.width_field.read(bytes([0, 0, 0, 0, 0x01])) == 0x0100

    def test_encode_roundtrip(self):
        assert self.width_field.encode(0x0102) == bytes([0x01, 0x02])

    def test_encode_wraps_oversized_value(self):
        assert self.width_field.encode(0x12345) == bytes([0x23, 0x45])

    def test_byte_range(self):
        assert list(self.width_field.byte_range()) == [4, 5]


class TestFormatSpec:
    def _spec(self):
        return FormatSpec(
            "demo",
            [
                FieldSpec("/magic", 0, 2, FieldKind.MAGIC, mutable=False),
                FieldSpec("/len", 2, 2, FieldKind.UINT),
                FieldSpec("/payload", 4, 4, FieldKind.BYTES),
            ],
        )

    def test_field_lookup(self):
        assert self._spec().field("/len").offset == 2

    def test_unknown_field_raises(self):
        with pytest.raises(FormatError):
            self._spec().field("/missing")

    def test_duplicate_paths_rejected(self):
        with pytest.raises(FormatError):
            FormatSpec("bad", [FieldSpec("/a", 0, 1), FieldSpec("/a", 1, 1)])

    def test_field_at_offset(self):
        assert self._spec().field_at_offset(3).path == "/len"
        assert self._spec().field_at_offset(100) is None

    def test_minimum_size(self):
        assert self._spec().minimum_size() == 8

    def test_dissect_rejects_short_input(self):
        with pytest.raises(FormatError):
            self._spec().dissect(b"abc")

    def test_mutable_fields_exclude_magic(self):
        paths = [f.path for f in self._spec().mutable_fields()]
        assert "/magic" not in paths

    def test_describe_offsets_groups_by_field(self):
        dissected = self._spec().dissect(bytes(8))
        grouped = dissected.describe_offsets([2, 3, 6, 100])
        assert grouped["/len"] == [2, 3]
        assert grouped["/payload"] == [6]
        assert grouped["<raw>"] == [100]


class TestChecksums:
    def test_crc32_matches_zlib(self):
        assert crc32(b"IHDR1234") == zlib.crc32(b"IHDR1234") & 0xFFFFFFFF

    def test_adler32_matches_zlib(self):
        assert adler32(b"payload") == zlib.adler32(b"payload") & 0xFFFFFFFF

    def test_additive_checksum(self):
        assert additive_checksum(bytes([1, 2, 3])) == 6


@pytest.mark.parametrize(
    "spec,builder",
    [
        (PngFormat, build_png_seed),
        (WavFormat, build_wav_seed),
        (SwfFormat, build_swf_seed),
        (WebpFormat, build_webp_seed),
        (XwdFormat, build_xwd_seed),
    ],
    ids=["png", "wav", "swf", "webp", "xwd"],
)
class TestSeedBuilders:
    def test_seed_large_enough(self, spec, builder):
        assert len(builder()) >= spec.minimum_size()

    def test_seed_dissects(self, spec, builder):
        dissected = spec.dissect(builder())
        assert isinstance(dissected, DissectedInput)
        assert dissected.field_values()

    def test_mutable_fields_have_distinct_ranges(self, spec, builder):
        seen = set()
        for field in spec.fields:
            for offset in field.byte_range():
                assert offset not in seen, f"overlap at {offset} in {spec.name}"
                seen.add(offset)


class TestPngSpecifics:
    def test_seed_field_values(self):
        dissected = PngFormat.dissect(build_png_seed(width=280, height=100, bit_depth=8))
        assert dissected.value_of("/header/width") == 280
        assert dissected.value_of("/header/height") == 100
        assert dissected.value_of("/header/bit_depth") == 8

    def test_seed_crc_is_valid(self):
        seed = build_png_seed()
        dissected = PngFormat.dissect(seed)
        start = png_layout.IHDR_TYPE_OFFSET
        expected = zlib.crc32(seed[start : start + 17]) & 0xFFFFFFFF
        assert dissected.value_of("/ihdr/crc") == expected

    def test_signature_preserved(self):
        assert build_png_seed()[:8] == png_layout.PNG_SIGNATURE


class TestWavSpecifics:
    def test_seed_field_values(self):
        dissected = WavFormat.dissect(build_wav_seed(channels=2, extra_size=8))
        assert dissected.value_of("/fmt/channels") == 2
        assert dissected.value_of("/fmt/extra_size") == 8

    def test_riff_size_matches_length_field(self):
        seed = build_wav_seed()
        dissected = WavFormat.dissect(seed)
        assert dissected.value_of("/riff/size") == len(seed) - wav_layout.WAVE_MAGIC_OFFSET


class TestRewriter:
    def test_rewrite_fields_updates_values_and_checksum(self):
        rewriter = InputRewriter(PngFormat)
        seed = build_png_seed()
        rewritten = rewriter.rewrite_fields(seed, {"/header/width": 966175})
        dissected = PngFormat.dissect(rewritten)
        assert dissected.value_of("/header/width") == 966175
        start = png_layout.IHDR_TYPE_OFFSET
        assert dissected.value_of("/ihdr/crc") == (
            zlib.crc32(rewritten[start : start + 17]) & 0xFFFFFFFF
        )

    def test_rewrite_bytes_skips_immutable_fields(self):
        rewriter = InputRewriter(PngFormat)
        seed = build_png_seed()
        rewritten = rewriter.rewrite_bytes(seed, {0: 0xAA, png_layout.WIDTH_OFFSET: 0x7F})
        assert rewritten[0] == seed[0]  # signature byte untouched
        assert rewritten[png_layout.WIDTH_OFFSET] == 0x7F

    def test_rewrite_bytes_out_of_range_offsets_ignored(self):
        rewriter = InputRewriter(PngFormat)
        seed = build_png_seed()
        assert rewriter.rewrite_bytes(seed, {10_000: 1, -3: 2}) == seed

    def test_raw_byte_mode_without_spec(self):
        rewriter = InputRewriter(None)
        out = rewriter.rewrite_bytes(b"\x00\x01\x02", {1: 0xFF})
        assert out == b"\x00\xff\x02"

    def test_field_rewrite_without_spec_raises(self):
        with pytest.raises(FormatError):
            InputRewriter(None).rewrite_fields(b"abcd", {"/x": 1})

    def test_field_values_to_bytes_big_endian(self):
        rewriter = InputRewriter(PngFormat)
        mapping = rewriter.field_values_to_bytes({"/header/width": 0x01020304})
        assert mapping[png_layout.WIDTH_OFFSET] == 0x01
        assert mapping[png_layout.WIDTH_OFFSET + 3] == 0x04

    def test_wav_length_field_recomputed(self):
        rewriter = InputRewriter(WavFormat)
        seed = build_wav_seed()
        rewritten = rewriter.rewrite_fields(seed, {"/data/frame_size": 4096})
        dissected = WavFormat.dissect(rewritten)
        assert dissected.value_of("/data/frame_size") == 4096
        assert dissected.value_of("/riff/size") == len(rewritten) - wav_layout.WAVE_MAGIC_OFFSET
